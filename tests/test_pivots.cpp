#include "hde/pivots.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "bfs/serial_bfs.hpp"
#include "graph/builder.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "sssp/dijkstra.hpp"
#include "util/parallel.hpp"

namespace parhde {
namespace {

TEST(RandomPivots, DistinctAndInRange) {
  const auto pivots = RandomPivots(100, 30, 5);
  EXPECT_EQ(pivots.size(), 30u);
  std::set<vid_t> unique(pivots.begin(), pivots.end());
  EXPECT_EQ(unique.size(), 30u);
  for (const vid_t p : pivots) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 100);
  }
}

TEST(RandomPivots, FullSampleIsPermutation) {
  const auto pivots = RandomPivots(20, 20, 7);
  std::set<vid_t> unique(pivots.begin(), pivots.end());
  EXPECT_EQ(unique.size(), 20u);
}

TEST(RandomPivots, DeterministicForSeed) {
  EXPECT_EQ(RandomPivots(1000, 50, 9), RandomPivots(1000, 50, 9));
}

TEST(KCentersPivots, ChainPicksExtremes) {
  // On a chain starting from vertex 0, the farthest vertex is n-1, then the
  // next pivot maximizes min-distance: the middle.
  const CsrGraph g = BuildCsrGraph(101, GenChain(101));
  const auto pivots = KCentersPivots(g, 3, 0);
  ASSERT_EQ(pivots.size(), 3u);
  EXPECT_EQ(pivots[0], 0);
  EXPECT_EQ(pivots[1], 100);
  EXPECT_EQ(pivots[2], 50);
}

TEST(KCentersPivots, PivotsAreDistinctOnNonTrivialGraphs) {
  const CsrGraph g = BuildCsrGraph(400, GenGrid2d(20, 20));
  const auto pivots = KCentersPivots(g, 10, 0);
  std::set<vid_t> unique(pivots.begin(), pivots.end());
  EXPECT_EQ(unique.size(), pivots.size());
}

TEST(KCentersPivots, TwoApproximationProperty) {
  // Gonzalez's guarantee: the farthest-first radius is at most 2x optimal.
  // We verify the weaker but checkable invariant that each new pivot was at
  // maximal distance from the previous set at selection time.
  const CsrGraph g = BuildCsrGraph(225, GenGrid2d(15, 15));
  const auto pivots = KCentersPivots(g, 5, 0);

  std::vector<dist_t> to_set(static_cast<std::size_t>(g.NumVertices()),
                             kInfDist);
  for (std::size_t i = 0; i < pivots.size(); ++i) {
    if (i > 0) {
      // pivots[i] must achieve the max of to_set.
      dist_t maxd = 0;
      for (const dist_t d : to_set) {
        if (d != kInfDist) maxd = std::max(maxd, d);
      }
      EXPECT_EQ(to_set[static_cast<std::size_t>(pivots[i])], maxd);
    }
    const auto dist = SerialBfs(g, pivots[i]);
    for (std::size_t v = 0; v < dist.size(); ++v) {
      to_set[v] = std::min(to_set[v], dist[v]);
    }
  }
}

TEST(DistancePhase, KCentersFillsColumnsWithBfsDistances) {
  const CsrGraph g = BuildCsrGraph(100, GenGrid2d(10, 10));
  HdeOptions options;
  options.subspace_dim = 4;
  options.start_vertex = 0;
  const DistancePhase phase = RunDistancePhase(g, options);
  ASSERT_EQ(phase.pivots.size(), 4u);
  ASSERT_EQ(phase.B.Cols(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    const auto expected = SerialBfs(g, phase.pivots[i]);
    for (vid_t v = 0; v < 100; ++v) {
      EXPECT_DOUBLE_EQ(phase.B.At(static_cast<std::size_t>(v), i),
                       static_cast<double>(expected[static_cast<std::size_t>(v)]));
    }
  }
}

TEST(DistancePhase, RandomStrategyAlsoFillsBfsDistances) {
  const CsrGraph g = BuildCsrGraph(225, GenGrid2d(15, 15));
  HdeOptions options;
  options.subspace_dim = 6;
  options.pivots = PivotStrategy::Random;
  options.seed = 3;
  const DistancePhase phase = RunDistancePhase(g, options);
  ASSERT_EQ(phase.pivots.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    const auto expected = SerialBfs(g, phase.pivots[i]);
    for (vid_t v = 0; v < g.NumVertices(); ++v) {
      EXPECT_DOUBLE_EQ(phase.B.At(static_cast<std::size_t>(v), i),
                       static_cast<double>(expected[static_cast<std::size_t>(v)]));
    }
  }
}

TEST(DistancePhase, SerialKernelMatchesParallelKernel) {
  const CsrGraph g = BuildCsrGraph(256, GenKronecker(8, 5, 4));
  HdeOptions par;
  par.subspace_dim = 3;
  par.start_vertex = 0;
  HdeOptions ser = par;
  ser.kernel = DistanceKernel::SerialBfs;
  const DistancePhase a = RunDistancePhase(g, par);
  const DistancePhase b = RunDistancePhase(g, ser);
  EXPECT_EQ(a.pivots, b.pivots);
  for (std::size_t c = 0; c < 3; ++c) {
    for (std::size_t r = 0; r < static_cast<std::size_t>(g.NumVertices()); ++r) {
      EXPECT_DOUBLE_EQ(a.B.At(r, c), b.B.At(r, c));
    }
  }
}

TEST(DistancePhase, SsspKernelOnUnitWeightsMatchesBfs) {
  BuildOptions bopts;
  bopts.keep_weights = true;
  EdgeList edges = GenGrid2d(12, 12);  // unit weights by default
  const CsrGraph g = BuildCsrGraph(144, edges, bopts);
  HdeOptions options;
  options.subspace_dim = 3;
  options.start_vertex = 0;
  options.kernel = DistanceKernel::DeltaStepping;
  const DistancePhase phase = RunDistancePhase(g, options);
  for (std::size_t i = 0; i < 3; ++i) {
    const auto expected = SerialBfs(g, phase.pivots[i]);
    for (vid_t v = 0; v < 144; ++v) {
      EXPECT_DOUBLE_EQ(phase.B.At(static_cast<std::size_t>(v), i),
                       static_cast<double>(expected[static_cast<std::size_t>(v)]));
    }
  }
}

CsrGraph WeightedConnected(vid_t scale, std::uint64_t seed) {
  EdgeList edges = GenKronecker(scale, 6, seed);
  AssignRandomWeights(edges, 2.0, 20.0, seed + 1);
  BuildOptions opts;
  opts.keep_weights = true;
  opts.merge = BuildOptions::MergePolicy::Min;
  return LargestComponent(BuildCsrGraph(vid_t{1} << scale, edges, opts)).graph;
}

TEST(DistancePhase, WeightedRandomPhaseMatchesDijkstra) {
  // The random-pivot weighted phase must produce exact Dijkstra columns no
  // matter which engine the auto heuristic picks.
  const CsrGraph g = WeightedConnected(9, 41);
  HdeOptions options;
  options.subspace_dim = 6;
  options.pivots = PivotStrategy::Random;
  options.kernel = DistanceKernel::DeltaStepping;
  options.seed = 5;
  const DistancePhase phase = RunDistancePhase(g, options);
  ASSERT_EQ(phase.B.Cols(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    const auto expected = Dijkstra(g, phase.pivots[i]);
    for (vid_t v = 0; v < g.NumVertices(); ++v) {
      EXPECT_NEAR(phase.B.At(static_cast<std::size_t>(v), i),
                  expected[static_cast<std::size_t>(v)], 1e-9)
          << "column " << i << " vertex " << v;
    }
  }
}

TEST(DistancePhase, WeightedEnginesProduceEqualColumns) {
  // One parallel Δ-stepping search at a time vs one sequential Δ-stepping
  // per thread: identical pivots, near-identical distance matrices.
  const CsrGraph g = WeightedConnected(9, 43);
  HdeOptions par;
  par.subspace_dim = 8;
  par.pivots = PivotStrategy::Random;
  par.kernel = DistanceKernel::DeltaStepping;
  par.seed = 7;
  par.sssp_engine = SsspEngine::Parallel;
  HdeOptions con = par;
  con.sssp_engine = SsspEngine::Concurrent;
  const DistancePhase a = RunDistancePhase(g, par);
  const DistancePhase b = RunDistancePhase(g, con);
  ASSERT_EQ(a.pivots, b.pivots);
  for (std::size_t c = 0; c < 8; ++c) {
    for (std::size_t r = 0; r < static_cast<std::size_t>(g.NumVertices());
         ++r) {
      EXPECT_NEAR(a.B.At(r, c), b.B.At(r, c), 1e-9);
    }
  }
}

TEST(DistancePhase, WeightedSentinelSortsAboveReachable) {
  // Regression test for the weighted unreachable sentinel: with weights in
  // [8, 10] the far corner of the grid is at distance >= 22 hops * 8 = 176
  // > n = 147, so the old hop sentinel n would sort *below* reachable
  // vertices. Every unreachable entry must be strictly above every finite
  // entry of its column.
  EdgeList edges = GenGrid2d(12, 12);  // component A: 0..143
  edges.push_back({144, 145, 1.0});    // component B: 144-145-146
  edges.push_back({145, 146, 1.0});
  AssignRandomWeights(edges, 8.0, 10.0, 23);
  BuildOptions bopts;
  bopts.keep_weights = true;
  const CsrGraph g = BuildCsrGraph(147, edges, bopts);
  const vid_t n = g.NumVertices();

  HdeOptions options;
  options.kernel = DistanceKernel::DeltaStepping;
  std::vector<double> column(static_cast<std::size_t>(n));
  RunSingleSearch(g, 0, options, column, nullptr);

  const auto expected = Dijkstra(g, 0);
  double max_reachable = 0.0;
  for (vid_t v = 0; v < n; ++v) {
    if (std::isfinite(expected[static_cast<std::size_t>(v)])) {
      max_reachable =
          std::max(max_reachable, column[static_cast<std::size_t>(v)]);
    }
  }
  // The premise of the bug: reachable weighted distances exceed n.
  ASSERT_GT(max_reachable, static_cast<double>(n));
  for (vid_t v = 145; v < n; ++v) {
    EXPECT_GT(column[static_cast<std::size_t>(v)], max_reachable)
        << "unreachable vertex " << v << " sorted below a reachable one";
  }
}

TEST(DistancePhase, WeightedKCentersUsesWeightedFarthestVertex) {
  // On a weighted chain, k-centers with the SSSP kernel must chase the
  // weighted-farthest vertex, and columns must be weighted distances.
  BuildOptions bopts;
  bopts.keep_weights = true;
  EdgeList edges = GenChain(50);
  AssignRandomWeights(edges, 1.0, 9.0, 31);
  const CsrGraph g = BuildCsrGraph(50, edges, bopts);
  HdeOptions options;
  options.subspace_dim = 4;
  options.start_vertex = 0;
  options.kernel = DistanceKernel::DeltaStepping;
  const DistancePhase phase = RunDistancePhase(g, options);
  for (std::size_t i = 0; i < 4; ++i) {
    const auto expected = Dijkstra(g, phase.pivots[i]);
    for (vid_t v = 0; v < 50; ++v) {
      EXPECT_NEAR(phase.B.At(static_cast<std::size_t>(v), i),
                  expected[static_cast<std::size_t>(v)], 1e-9);
    }
  }
}

TEST(DistancePhase, WeightedRandomPhaseAcrossThreadCounts) {
  // The auto engine split depends on the thread count (s >= threads picks
  // the concurrent driver); both sides of the split must agree with
  // Dijkstra at every count.
  const CsrGraph g = WeightedConnected(8, 47);
  for (const int threads : {1, 4, 16}) {
    ThreadCountGuard guard(threads);
    HdeOptions options;
    options.subspace_dim = 8;  // concurrent at 1 and 4 threads, parallel at 16
    options.pivots = PivotStrategy::Random;
    options.kernel = DistanceKernel::DeltaStepping;
    options.seed = 11;
    const DistancePhase phase = RunDistancePhase(g, options);
    for (std::size_t i = 0; i < 8; ++i) {
      const auto expected = Dijkstra(g, phase.pivots[i]);
      for (vid_t v = 0; v < g.NumVertices(); ++v) {
        EXPECT_NEAR(phase.B.At(static_cast<std::size_t>(v), i),
                    expected[static_cast<std::size_t>(v)], 1e-9);
      }
    }
  }
}

}  // namespace
}  // namespace parhde
