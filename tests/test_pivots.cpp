#include "hde/pivots.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "bfs/serial_bfs.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace parhde {
namespace {

TEST(RandomPivots, DistinctAndInRange) {
  const auto pivots = RandomPivots(100, 30, 5);
  EXPECT_EQ(pivots.size(), 30u);
  std::set<vid_t> unique(pivots.begin(), pivots.end());
  EXPECT_EQ(unique.size(), 30u);
  for (const vid_t p : pivots) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 100);
  }
}

TEST(RandomPivots, FullSampleIsPermutation) {
  const auto pivots = RandomPivots(20, 20, 7);
  std::set<vid_t> unique(pivots.begin(), pivots.end());
  EXPECT_EQ(unique.size(), 20u);
}

TEST(RandomPivots, DeterministicForSeed) {
  EXPECT_EQ(RandomPivots(1000, 50, 9), RandomPivots(1000, 50, 9));
}

TEST(KCentersPivots, ChainPicksExtremes) {
  // On a chain starting from vertex 0, the farthest vertex is n-1, then the
  // next pivot maximizes min-distance: the middle.
  const CsrGraph g = BuildCsrGraph(101, GenChain(101));
  const auto pivots = KCentersPivots(g, 3, 0);
  ASSERT_EQ(pivots.size(), 3u);
  EXPECT_EQ(pivots[0], 0);
  EXPECT_EQ(pivots[1], 100);
  EXPECT_EQ(pivots[2], 50);
}

TEST(KCentersPivots, PivotsAreDistinctOnNonTrivialGraphs) {
  const CsrGraph g = BuildCsrGraph(400, GenGrid2d(20, 20));
  const auto pivots = KCentersPivots(g, 10, 0);
  std::set<vid_t> unique(pivots.begin(), pivots.end());
  EXPECT_EQ(unique.size(), pivots.size());
}

TEST(KCentersPivots, TwoApproximationProperty) {
  // Gonzalez's guarantee: the farthest-first radius is at most 2x optimal.
  // We verify the weaker but checkable invariant that each new pivot was at
  // maximal distance from the previous set at selection time.
  const CsrGraph g = BuildCsrGraph(225, GenGrid2d(15, 15));
  const auto pivots = KCentersPivots(g, 5, 0);

  std::vector<dist_t> to_set(static_cast<std::size_t>(g.NumVertices()),
                             kInfDist);
  for (std::size_t i = 0; i < pivots.size(); ++i) {
    if (i > 0) {
      // pivots[i] must achieve the max of to_set.
      dist_t maxd = 0;
      for (const dist_t d : to_set) {
        if (d != kInfDist) maxd = std::max(maxd, d);
      }
      EXPECT_EQ(to_set[static_cast<std::size_t>(pivots[i])], maxd);
    }
    const auto dist = SerialBfs(g, pivots[i]);
    for (std::size_t v = 0; v < dist.size(); ++v) {
      to_set[v] = std::min(to_set[v], dist[v]);
    }
  }
}

TEST(DistancePhase, KCentersFillsColumnsWithBfsDistances) {
  const CsrGraph g = BuildCsrGraph(100, GenGrid2d(10, 10));
  HdeOptions options;
  options.subspace_dim = 4;
  options.start_vertex = 0;
  const DistancePhase phase = RunDistancePhase(g, options);
  ASSERT_EQ(phase.pivots.size(), 4u);
  ASSERT_EQ(phase.B.Cols(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    const auto expected = SerialBfs(g, phase.pivots[i]);
    for (vid_t v = 0; v < 100; ++v) {
      EXPECT_DOUBLE_EQ(phase.B.At(static_cast<std::size_t>(v), i),
                       static_cast<double>(expected[static_cast<std::size_t>(v)]));
    }
  }
}

TEST(DistancePhase, RandomStrategyAlsoFillsBfsDistances) {
  const CsrGraph g = BuildCsrGraph(225, GenGrid2d(15, 15));
  HdeOptions options;
  options.subspace_dim = 6;
  options.pivots = PivotStrategy::Random;
  options.seed = 3;
  const DistancePhase phase = RunDistancePhase(g, options);
  ASSERT_EQ(phase.pivots.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    const auto expected = SerialBfs(g, phase.pivots[i]);
    for (vid_t v = 0; v < g.NumVertices(); ++v) {
      EXPECT_DOUBLE_EQ(phase.B.At(static_cast<std::size_t>(v), i),
                       static_cast<double>(expected[static_cast<std::size_t>(v)]));
    }
  }
}

TEST(DistancePhase, SerialKernelMatchesParallelKernel) {
  const CsrGraph g = BuildCsrGraph(256, GenKronecker(8, 5, 4));
  HdeOptions par;
  par.subspace_dim = 3;
  par.start_vertex = 0;
  HdeOptions ser = par;
  ser.kernel = DistanceKernel::SerialBfs;
  const DistancePhase a = RunDistancePhase(g, par);
  const DistancePhase b = RunDistancePhase(g, ser);
  EXPECT_EQ(a.pivots, b.pivots);
  for (std::size_t c = 0; c < 3; ++c) {
    for (std::size_t r = 0; r < static_cast<std::size_t>(g.NumVertices()); ++r) {
      EXPECT_DOUBLE_EQ(a.B.At(r, c), b.B.At(r, c));
    }
  }
}

TEST(DistancePhase, SsspKernelOnUnitWeightsMatchesBfs) {
  BuildOptions bopts;
  bopts.keep_weights = true;
  EdgeList edges = GenGrid2d(12, 12);  // unit weights by default
  const CsrGraph g = BuildCsrGraph(144, edges, bopts);
  HdeOptions options;
  options.subspace_dim = 3;
  options.start_vertex = 0;
  options.kernel = DistanceKernel::DeltaStepping;
  const DistancePhase phase = RunDistancePhase(g, options);
  for (std::size_t i = 0; i < 3; ++i) {
    const auto expected = SerialBfs(g, phase.pivots[i]);
    for (vid_t v = 0; v < 144; ++v) {
      EXPECT_DOUBLE_EQ(phase.B.At(static_cast<std::size_t>(v), i),
                       static_cast<double>(expected[static_cast<std::size_t>(v)]));
    }
  }
}

}  // namespace
}  // namespace parhde
