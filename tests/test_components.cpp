#include "graph/components.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace parhde {
namespace {

TEST(ConnectedComponents, SingleComponent) {
  const CsrGraph g = BuildCsrGraph(10, GenRing(10));
  const auto labels = ConnectedComponents(g);
  EXPECT_EQ(CountComponents(labels), 1);
  for (const vid_t l : labels) EXPECT_EQ(l, 0);
}

TEST(ConnectedComponents, IsolatedVerticesAreOwnComponents) {
  const CsrGraph g = BuildCsrGraph(5, {});
  const auto labels = ConnectedComponents(g);
  EXPECT_EQ(CountComponents(labels), 5);
}

TEST(ConnectedComponents, LabelsAreCanonicalMinima) {
  // Components {0,1}, {2,3,4}: labels must be the smallest member.
  const CsrGraph g = BuildCsrGraph(5, {{0, 1}, {2, 3}, {3, 4}});
  const auto labels = ConnectedComponents(g);
  EXPECT_EQ(labels[0], 0);
  EXPECT_EQ(labels[1], 0);
  EXPECT_EQ(labels[2], 2);
  EXPECT_EQ(labels[3], 2);
  EXPECT_EQ(labels[4], 2);
}

TEST(LargestComponent, PicksBiggest) {
  // Two components: sizes 2 and 3.
  const CsrGraph g = BuildCsrGraph(5, {{0, 1}, {2, 3}, {3, 4}});
  const auto extraction = LargestComponent(g);
  EXPECT_EQ(extraction.graph.NumVertices(), 3);
  EXPECT_EQ(extraction.graph.NumEdges(), 2);
  EXPECT_EQ(extraction.new_to_old, (std::vector<vid_t>{2, 3, 4}));
}

TEST(LargestComponent, PreservesRelativeOrder) {
  // Component members 1, 4, 7 must map to 0, 1, 2 in that order.
  const CsrGraph g = BuildCsrGraph(8, {{1, 4}, {4, 7}, {0, 2}});
  const auto extraction = LargestComponent(g);
  EXPECT_EQ(extraction.new_to_old, (std::vector<vid_t>{1, 4, 7}));
  EXPECT_EQ(extraction.old_to_new[1], 0);
  EXPECT_EQ(extraction.old_to_new[4], 1);
  EXPECT_EQ(extraction.old_to_new[7], 2);
  EXPECT_EQ(extraction.old_to_new[0], kInvalidVid);
}

TEST(LargestComponent, MappingsAreInverse) {
  const CsrGraph g = BuildCsrGraph(1 << 10, GenKronecker(10, 4, 5));
  const auto extraction = LargestComponent(g);
  for (std::size_t nv = 0; nv < extraction.new_to_old.size(); ++nv) {
    const vid_t old = extraction.new_to_old[nv];
    EXPECT_EQ(extraction.old_to_new[static_cast<std::size_t>(old)],
              static_cast<vid_t>(nv));
  }
}

TEST(LargestComponent, KeepsWeights) {
  BuildOptions opts;
  opts.keep_weights = true;
  const CsrGraph g = BuildCsrGraph(4, {{0, 1, 2.5}, {1, 2, 1.5}}, opts);
  const auto extraction = LargestComponent(g);
  EXPECT_TRUE(extraction.graph.HasWeights());
  EXPECT_EQ(extraction.graph.NumVertices(), 3);
  EXPECT_DOUBLE_EQ(extraction.graph.NeighborWeights(0)[0], 2.5);
}

TEST(LargestComponent, ResultIsConnected) {
  const CsrGraph g = BuildCsrGraph(2000, GenUniformRandom(2000, 3000, 6));
  const auto extraction = LargestComponent(g);
  EXPECT_TRUE(IsConnected(extraction.graph));
  EXPECT_TRUE(extraction.graph.Validate());
}

TEST(IsConnected, EmptyAndSingleton) {
  EXPECT_TRUE(IsConnected(BuildCsrGraph(0, {})));
  EXPECT_TRUE(IsConnected(BuildCsrGraph(1, {})));
  EXPECT_FALSE(IsConnected(BuildCsrGraph(2, {})));
}

TEST(ParallelComponents, MatchesSerialOnRandomGraph) {
  const CsrGraph g = BuildCsrGraph(3000, GenUniformRandom(3000, 4000, 11));
  EXPECT_EQ(ParallelConnectedComponents(g), ConnectedComponents(g));
}

TEST(ParallelComponents, MatchesSerialOnKron) {
  const CsrGraph g = BuildCsrGraph(1 << 12, GenKronecker(12, 4, 13));
  EXPECT_EQ(ParallelConnectedComponents(g), ConnectedComponents(g));
}

TEST(ParallelComponents, HighDiameterChain) {
  // Pointer jumping must conquer a 10k-long chain in O(log n) rounds,
  // not O(n) label-propagation rounds — this test is fast iff it does.
  const CsrGraph g = BuildCsrGraph(10000, GenChain(10000));
  const auto labels = ParallelConnectedComponents(g);
  for (const vid_t l : labels) EXPECT_EQ(l, 0);
}

TEST(ParallelComponents, IsolatedAndEmpty) {
  EXPECT_TRUE(ParallelConnectedComponents(BuildCsrGraph(0, {})).empty());
  const auto labels = ParallelConnectedComponents(BuildCsrGraph(5, {}));
  for (std::size_t v = 0; v < 5; ++v) {
    EXPECT_EQ(labels[v], static_cast<vid_t>(v));
  }
}

class ComponentCountSweep
    : public ::testing::TestWithParam<int> {};

TEST_P(ComponentCountSweep, DisjointRingsCounted) {
  const int rings = GetParam();
  EdgeList edges;
  const vid_t ring_size = 6;
  for (int r = 0; r < rings; ++r) {
    const vid_t base = r * ring_size;
    for (vid_t i = 0; i < ring_size; ++i) {
      edges.push_back({static_cast<vid_t>(base + i),
                       static_cast<vid_t>(base + (i + 1) % ring_size), 1.0});
    }
  }
  const CsrGraph g = BuildCsrGraph(rings * ring_size, edges);
  EXPECT_EQ(CountComponents(ConnectedComponents(g)), rings);
}

INSTANTIATE_TEST_SUITE_P(RingCounts, ComponentCountSweep,
                         ::testing::Values(1, 2, 5, 17));

}  // namespace
}  // namespace parhde
