#include "linalg/laplacian_ops.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "linalg/vector_ops.hpp"
#include "util/prng.hpp"

namespace parhde {
namespace {

std::vector<double> RandomVector(std::size_t n, std::uint64_t seed) {
  std::vector<double> x(n);
  Xoshiro256 rng(seed);
  for (auto& v : x) v = rng.NextDouble() * 2.0 - 1.0;
  return x;
}

TEST(LaplacianOps, ConstantVectorInKernel) {
  // L * 1 = 0 for every graph (row sums vanish).
  const CsrGraph g = BuildCsrGraph(1 << 8, GenKronecker(8, 5, 2));
  std::vector<double> ones(static_cast<std::size_t>(g.NumVertices()), 1.0);
  std::vector<double> y(ones.size());
  LaplacianTimesVector(g, ones, y);
  EXPECT_LT(MaxAbs(y), 1e-12);
}

TEST(LaplacianOps, TriangleByHand) {
  const CsrGraph g = BuildCsrGraph(3, {{0, 1}, {1, 2}, {0, 2}});
  const std::vector<double> x{1.0, 2.0, 4.0};
  std::vector<double> y(3);
  LaplacianTimesVector(g, x, y);
  // L = [[2,-1,-1],[-1,2,-1],[-1,-1,2]].
  EXPECT_DOUBLE_EQ(y[0], 2 * 1 - 2 - 4);
  EXPECT_DOUBLE_EQ(y[1], -1 + 2 * 2 - 4);
  EXPECT_DOUBLE_EQ(y[2], -1 - 2 + 2 * 4);
}

TEST(LaplacianOps, WeightedByHand) {
  BuildOptions opts;
  opts.keep_weights = true;
  const CsrGraph g = BuildCsrGraph(2, {{0, 1, 3.0}}, opts);
  const std::vector<double> x{1.0, 5.0};
  std::vector<double> y(2);
  LaplacianTimesVector(g, x, y);
  EXPECT_DOUBLE_EQ(y[0], 3.0 * 1 - 3.0 * 5);
  EXPECT_DOUBLE_EQ(y[1], -3.0 * 1 + 3.0 * 5);
}

TEST(LaplacianOps, QuadraticFormMatchesOperator) {
  // x' (Lx) computed via the kernel equals the edge-difference identity.
  const CsrGraph g = BuildCsrGraph(500, GenUniformRandom(500, 2500, 3));
  const auto x = RandomVector(static_cast<std::size_t>(g.NumVertices()), 4);
  std::vector<double> y(x.size());
  LaplacianTimesVector(g, x, y);
  EXPECT_NEAR(Dot(x, y), LaplacianQuadraticForm(g, x), 1e-8);
}

TEST(LaplacianOps, QuadraticFormNonNegative) {
  // PSD property of the Laplacian, §2.1.
  const CsrGraph g = BuildCsrGraph(256, GenKronecker(8, 4, 5));
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto x = RandomVector(static_cast<std::size_t>(g.NumVertices()), seed);
    EXPECT_GE(LaplacianQuadraticForm(g, x), 0.0);
  }
}

TEST(LaplacianOps, FusedMatchesExplicit) {
  // The §4.4 equivalence: fused L·S must equal the explicit-matrix SpMM.
  const CsrGraph g = BuildCsrGraph(400, GenGrid2d(20, 20));
  const std::size_t n = static_cast<std::size_t>(g.NumVertices());
  DenseMatrix S(n, 5);
  Xoshiro256 rng(6);
  for (std::size_t c = 0; c < 5; ++c) {
    for (std::size_t r = 0; r < n; ++r) S.At(r, c) = rng.NextDouble();
  }

  DenseMatrix fused(n, 5), explicit_out(n, 5);
  LaplacianTimesMatrixFused(g, S, fused);
  const ExplicitLaplacian L = BuildExplicitLaplacian(g);
  LaplacianTimesMatrixExplicit(L, S, explicit_out);

  for (std::size_t c = 0; c < 5; ++c) {
    for (std::size_t r = 0; r < n; ++r) {
      EXPECT_NEAR(fused.At(r, c), explicit_out.At(r, c), 1e-10);
    }
  }
}

TEST(LaplacianOps, ExplicitLaplacianStructure) {
  const CsrGraph g = BuildCsrGraph(3, {{0, 1}, {1, 2}});
  const ExplicitLaplacian L = BuildExplicitLaplacian(g);
  // Row 0: diagonal 1, then -1 at column 1.
  ASSERT_EQ(L.offsets.size(), 4u);
  EXPECT_EQ(L.offsets[1] - L.offsets[0], 2);  // deg + diagonal
  EXPECT_EQ(L.offsets[2] - L.offsets[1], 3);
  // Row sums are zero.
  for (vid_t v = 0; v < 3; ++v) {
    double sum = 0.0;
    for (eid_t e = L.offsets[static_cast<std::size_t>(v)];
         e < L.offsets[static_cast<std::size_t>(v) + 1]; ++e) {
      sum += L.values[static_cast<std::size_t>(e)];
    }
    EXPECT_DOUBLE_EQ(sum, 0.0);
  }
  // Columns sorted within each row (diagonal in place).
  for (vid_t v = 0; v < 3; ++v) {
    for (eid_t e = L.offsets[static_cast<std::size_t>(v)] + 1;
         e < L.offsets[static_cast<std::size_t>(v) + 1]; ++e) {
      EXPECT_LT(L.columns[static_cast<std::size_t>(e) - 1],
                L.columns[static_cast<std::size_t>(e)]);
    }
  }
}

TEST(TransitionOps, RowStochastic) {
  // (D^-1 A) * 1 = 1 on graphs without isolated vertices.
  const CsrGraph g = BuildCsrGraph(300, GenRing(300));
  std::vector<double> ones(300, 1.0), y(300);
  TransitionTimesVector(g, ones, y);
  for (const double v : y) EXPECT_NEAR(v, 1.0, 1e-12);
}

TEST(TransitionOps, IsolatedVertexGetsZero) {
  const CsrGraph g = BuildCsrGraph(3, {{0, 1}});
  std::vector<double> x{1.0, 1.0, 5.0}, y(3);
  TransitionTimesVector(g, x, y);
  EXPECT_DOUBLE_EQ(y[2], 0.0);
}

TEST(LaplacianOps, RowMajorMatchesFused) {
  const CsrGraph g = BuildCsrGraph(400, GenGrid2d(20, 20));
  const std::size_t n = static_cast<std::size_t>(g.NumVertices());
  for (const std::size_t k : {1u, 3u, 16u, 50u}) {
    DenseMatrix S(n, k);
    Xoshiro256 rng(k);
    for (std::size_t c = 0; c < k; ++c) {
      for (std::size_t r = 0; r < n; ++r) S.At(r, c) = rng.NextDouble();
    }
    DenseMatrix fused(n, k), row_major(n, k);
    LaplacianTimesMatrixFused(g, S, fused);
    LaplacianTimesMatrixRowMajor(g, S, row_major);
    for (std::size_t c = 0; c < k; ++c) {
      for (std::size_t r = 0; r < n; ++r) {
        ASSERT_NEAR(fused.At(r, c), row_major.At(r, c), 1e-10)
            << "k=" << k << " r=" << r << " c=" << c;
      }
    }
  }
}

TEST(LaplacianOps, RowMajorWeightedMatchesFused) {
  EdgeList edges = GenGrid2d(12, 12);
  AssignRandomWeights(edges, 0.5, 4.0, 9);
  BuildOptions opts;
  opts.keep_weights = true;
  const CsrGraph g = BuildCsrGraph(144, edges, opts);
  DenseMatrix S(144, 6);
  Xoshiro256 rng(17);
  for (std::size_t c = 0; c < 6; ++c) {
    for (std::size_t r = 0; r < 144; ++r) S.At(r, c) = rng.NextDouble();
  }
  DenseMatrix fused(144, 6), row_major(144, 6);
  LaplacianTimesMatrixFused(g, S, fused);
  LaplacianTimesMatrixRowMajor(g, S, row_major);
  for (std::size_t c = 0; c < 6; ++c) {
    for (std::size_t r = 0; r < 144; ++r) {
      EXPECT_NEAR(fused.At(r, c), row_major.At(r, c), 1e-10);
    }
  }
}

class LaplacianGraphSweep : public ::testing::TestWithParam<int> {};

TEST_P(LaplacianGraphSweep, FusedEqualsExplicitOnKron) {
  const int scale = GetParam();
  const CsrGraph g =
      BuildCsrGraph(vid_t{1} << scale, GenKronecker(scale, 6, 11));
  const std::size_t n = static_cast<std::size_t>(g.NumVertices());
  DenseMatrix S(n, 3);
  Xoshiro256 rng(12);
  for (std::size_t c = 0; c < 3; ++c) {
    for (std::size_t r = 0; r < n; ++r) S.At(r, c) = rng.NextDouble();
  }
  DenseMatrix a(n, 3), b(n, 3);
  LaplacianTimesMatrixFused(g, S, a);
  LaplacianTimesMatrixExplicit(BuildExplicitLaplacian(g), S, b);
  double worst = 0.0;
  for (std::size_t c = 0; c < 3; ++c) {
    for (std::size_t r = 0; r < n; ++r) {
      worst = std::max(worst, std::abs(a.At(r, c) - b.At(r, c)));
    }
  }
  EXPECT_LT(worst, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Scales, LaplacianGraphSweep,
                         ::testing::Values(6, 8, 10));

}  // namespace
}  // namespace parhde
