#include "util/table.hpp"

#include <gtest/gtest.h>

namespace parhde {
namespace {

TEST(TextTable, RendersHeaderAndRule) {
  TextTable table({"Graph", "Time (s)"});
  const std::string out = table.Render();
  EXPECT_NE(out.find("Graph"), std::string::npos);
  EXPECT_NE(out.find("Time (s)"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(TextTable, AlignsColumns) {
  TextTable table({"name", "v"});
  table.AddRow({"a", "1"});
  table.AddRow({"longer", "22"});
  const std::string out = table.Render();
  // Every line has the same length (column alignment).
  std::size_t prev = std::string::npos;
  std::size_t start = 0;
  while (start < out.size()) {
    const std::size_t end = out.find('\n', start);
    const std::size_t len = end - start;
    if (prev != std::string::npos) {
      EXPECT_EQ(len, prev);
    }
    prev = len;
    start = end + 1;
  }
}

TEST(TextTable, NumFormatsFixedDigits) {
  EXPECT_EQ(TextTable::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::Num(2.0, 1), "2.0");
  EXPECT_EQ(TextTable::Num(-0.5, 3), "-0.500");
}

TEST(TextTable, IntGroupsThousands) {
  EXPECT_EQ(TextTable::Int(0), "0");
  EXPECT_EQ(TextTable::Int(999), "999");
  EXPECT_EQ(TextTable::Int(1000), "1 000");
  EXPECT_EQ(TextTable::Int(2147483376LL), "2 147 483 376");
  EXPECT_EQ(TextTable::Int(-1234567), "-1 234 567");
}

}  // namespace
}  // namespace parhde
