#include "hde/phde.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/builder.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"

namespace parhde {
namespace {

double Variance(const std::vector<double>& v) {
  double mean = 0.0;
  for (const double x : v) mean += x;
  mean /= static_cast<double>(v.size());
  double var = 0.0;
  for (const double x : v) var += (x - mean) * (x - mean);
  return var / static_cast<double>(v.size());
}

TEST(Phde, ProducesFiniteNonDegenerateLayout) {
  const CsrGraph g = BuildCsrGraph(400, GenGrid2d(20, 20));
  HdeOptions options;
  options.subspace_dim = 8;
  options.start_vertex = 0;
  const HdeResult result = RunPhde(g, options);
  EXPECT_GT(Variance(result.layout.x), 1e-9);
  EXPECT_GT(Variance(result.layout.y), 1e-9);
  for (const double v : result.layout.x) EXPECT_TRUE(std::isfinite(v));
}

TEST(Phde, CoordinatesAreZeroMean) {
  // PHDE's axes are linear combinations of column-centered vectors, so both
  // coordinates must have zero mean — the "maximize scatter" normalization.
  const CsrGraph g = BuildCsrGraph(225, GenGrid2d(15, 15));
  HdeOptions options;
  options.subspace_dim = 6;
  options.start_vertex = 0;
  const HdeResult result = RunPhde(g, options);
  double mx = 0.0, my = 0.0;
  for (std::size_t v = 0; v < result.layout.x.size(); ++v) {
    mx += result.layout.x[v];
    my += result.layout.y[v];
  }
  EXPECT_NEAR(mx / static_cast<double>(result.layout.x.size()), 0.0, 1e-8);
  EXPECT_NEAR(my / static_cast<double>(result.layout.y.size()), 0.0, 1e-8);
}

TEST(Phde, RecordsItsPhases) {
  const CsrGraph g = BuildCsrGraph(400, GenGrid2d(20, 20));
  HdeOptions options;
  options.subspace_dim = 5;
  options.start_vertex = 0;
  const HdeResult result = RunPhde(g, options);
  EXPECT_GT(result.timings.Get(phase::kBfs), 0.0);
  EXPECT_GT(result.timings.Get(phase::kColCenter), 0.0);
  EXPECT_GT(result.timings.Get(phase::kMatMul), 0.0);
  EXPECT_DOUBLE_EQ(result.timings.Get(phase::kDOrtho), 0.0);  // no DOrtho
}

TEST(Phde, AxisEigenvaluesDescendingNonNegative) {
  // C'C is a Gram matrix: eigenvalues >= 0; PCA picks the two largest.
  const CsrGraph g = BuildCsrGraph(256, GenKronecker(8, 6, 3));
  const auto lcc = LargestComponent(g).graph;
  HdeOptions options;
  options.subspace_dim = 6;
  options.start_vertex = 0;
  const HdeResult result = RunPhde(lcc, options);
  EXPECT_GE(result.axis_eigenvalue[0], result.axis_eigenvalue[1] - 1e-9);
  EXPECT_GE(result.axis_eigenvalue[1], -1e-9);
}

TEST(Phde, FirstAxisCapturesChainExtent) {
  // PCA's first axis on a chain orders the vertices end to end.
  const CsrGraph g = BuildCsrGraph(64, GenChain(64));
  HdeOptions options;
  options.subspace_dim = 6;
  options.start_vertex = 0;
  const HdeResult result = RunPhde(g, options);
  int increasing = 0, decreasing = 0;
  for (std::size_t v = 0; v + 1 < 64; ++v) {
    if (result.layout.x[v + 1] > result.layout.x[v]) ++increasing;
    if (result.layout.x[v + 1] < result.layout.x[v]) ++decreasing;
  }
  EXPECT_TRUE(increasing >= 58 || decreasing >= 58);
}

TEST(Phde, DeterministicForSeed) {
  const CsrGraph g = BuildCsrGraph(225, GenGrid2d(15, 15));
  HdeOptions options;
  options.subspace_dim = 5;
  options.seed = 23;
  const HdeResult a = RunPhde(g, options);
  const HdeResult b = RunPhde(g, options);
  EXPECT_EQ(a.pivots, b.pivots);
  for (std::size_t v = 0; v < a.layout.x.size(); ++v) {
    EXPECT_DOUBLE_EQ(a.layout.x[v], b.layout.x[v]);
  }
}

}  // namespace
}  // namespace parhde
