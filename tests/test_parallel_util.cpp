#include "util/parallel.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace parhde {
namespace {

TEST(ExclusivePrefixSum, EmptyInput) {
  std::vector<eid_t> counts, out;
  ExclusivePrefixSum(counts, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 0);
}

TEST(ExclusivePrefixSum, SingleElement) {
  std::vector<eid_t> counts{5}, out;
  ExclusivePrefixSum(counts, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[1], 5);
}

TEST(ExclusivePrefixSum, MatchesSerialReference) {
  std::vector<eid_t> counts;
  for (int i = 0; i < 10007; ++i) counts.push_back((i * 37) % 11);
  std::vector<eid_t> out;
  ExclusivePrefixSum(counts, out);
  ASSERT_EQ(out.size(), counts.size() + 1);
  eid_t running = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    EXPECT_EQ(out[i], running) << "at index " << i;
    running += counts[i];
  }
  EXPECT_EQ(out.back(), running);
}

TEST(ExclusivePrefixSum, AllZeros) {
  std::vector<eid_t> counts(1000, 0), out;
  ExclusivePrefixSum(counts, out);
  for (const eid_t v : out) EXPECT_EQ(v, 0);
}

class PrefixSumThreadSweep : public ::testing::TestWithParam<int> {};

TEST_P(PrefixSumThreadSweep, DeterministicAcrossThreadCounts) {
  ThreadCountGuard guard(GetParam());
  std::vector<eid_t> counts;
  for (int i = 0; i < 4096; ++i) counts.push_back(i % 7);
  std::vector<eid_t> out;
  ExclusivePrefixSum(counts, out);
  eid_t running = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    ASSERT_EQ(out[i], running);
    running += counts[i];
  }
  EXPECT_EQ(out.back(), running);
}

INSTANTIATE_TEST_SUITE_P(Threads, PrefixSumThreadSweep,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST(ArgmaxFiniteDistance, EmptyVectorReturnsInvalid) {
  std::vector<dist_t> dist;
  EXPECT_EQ(ArgmaxFiniteDistance(dist), kInvalidVid);
}

TEST(ArgmaxFiniteDistance, AllInfiniteReturnsInvalid) {
  std::vector<dist_t> dist(100, kInfDist);
  EXPECT_EQ(ArgmaxFiniteDistance(dist), kInvalidVid);
}

TEST(ArgmaxFiniteDistance, FindsUniqueMax) {
  std::vector<dist_t> dist(100, 3);
  dist[42] = 17;
  EXPECT_EQ(ArgmaxFiniteDistance(dist), 42);
}

TEST(ArgmaxFiniteDistance, TieBreaksToSmallestId) {
  std::vector<dist_t> dist(100, 1);
  dist[30] = 9;
  dist[60] = 9;
  EXPECT_EQ(ArgmaxFiniteDistance(dist), 30);
}

TEST(ArgmaxFiniteDistance, IgnoresInfiniteEntries) {
  std::vector<dist_t> dist(50, 2);
  dist[10] = kInfDist;  // would be max if counted
  dist[20] = 5;
  EXPECT_EQ(ArgmaxFiniteDistance(dist), 20);
}

TEST(MinInto, ElementwiseMinimum) {
  std::vector<dist_t> d{5, 1, kInfDist, 7};
  const std::vector<dist_t> b{3, 4, 2, kInfDist};
  MinInto(d, b);
  EXPECT_EQ(d, (std::vector<dist_t>{3, 1, 2, 7}));
}

TEST(ParallelSum, MatchesAccumulate) {
  std::vector<double> v;
  for (int i = 0; i < 5000; ++i) v.push_back(0.25 * i);
  const double expected = std::accumulate(v.begin(), v.end(), 0.0);
  EXPECT_DOUBLE_EQ(ParallelSum(v), expected);
}

TEST(ThreadCountGuard, RestoresPreviousValue) {
  const int before = NumThreads();
  {
    ThreadCountGuard guard(2);
    EXPECT_EQ(NumThreads(), 2);
  }
  EXPECT_EQ(NumThreads(), before);
}

TEST(SetNumThreads, ClampsToAtLeastOne) {
  const int before = NumThreads();
  SetNumThreads(0);
  EXPECT_GE(NumThreads(), 1);
  SetNumThreads(before);
}

}  // namespace
}  // namespace parhde
