// Service layer tests: framing protocol, admission queue, graph cache,
// and end-to-end daemon behavior (concurrent clients, load shedding,
// deadlines, SIGTERM drain). The daemon and loadgen binary paths are
// injected by CMake as PARHDE_SERVE_PATH / PARHDE_LOADGEN_PATH. Suites
// are named Service* so the TSan CI job's filter picks them up.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "service/admission.hpp"
#include "service/graph_cache.hpp"
#include "service/protocol.hpp"
#include "util/json_reader.hpp"
#include "util/status.hpp"

#ifndef PARHDE_SERVE_PATH
#define PARHDE_SERVE_PATH ""
#endif
#ifndef PARHDE_LOADGEN_PATH
#define PARHDE_LOADGEN_PATH ""
#endif

namespace parhde::service {
namespace {

// ---------------------------------------------------------------- protocol

class ServiceProtocolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0);
  }
  void TearDown() override {
    if (fds_[0] >= 0) ::close(fds_[0]);
    if (fds_[1] >= 0) ::close(fds_[1]);
  }
  int fds_[2] = {-1, -1};
};

TEST_F(ServiceProtocolTest, FrameRoundTrip) {
  const std::string sent = "{\"op\":\"ping\"}";
  WriteFrame(fds_[0], sent);
  std::string got;
  ASSERT_TRUE(ReadFrame(fds_[1], got));
  EXPECT_EQ(got, sent);
}

TEST_F(ServiceProtocolTest, EmptyPayloadRoundTrips) {
  WriteFrame(fds_[0], "");
  std::string got = "sentinel";
  ASSERT_TRUE(ReadFrame(fds_[1], got));
  EXPECT_EQ(got, "");
}

TEST_F(ServiceProtocolTest, CleanEofReturnsFalse) {
  ::close(fds_[0]);
  fds_[0] = -1;
  std::string got;
  EXPECT_FALSE(ReadFrame(fds_[1], got));
}

TEST_F(ServiceProtocolTest, MidFrameTruncationThrows) {
  // A header promising 100 bytes followed by 3 and a hangup.
  const unsigned char header[4] = {100, 0, 0, 0};
  ASSERT_EQ(::write(fds_[0], header, 4), 4);
  ASSERT_EQ(::write(fds_[0], "abc", 3), 3);
  ::close(fds_[0]);
  fds_[0] = -1;
  std::string got;
  try {
    ReadFrame(fds_[1], got);
    FAIL() << "expected ParhdeError(kIo)";
  } catch (const ParhdeError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIo);
  }
}

TEST_F(ServiceProtocolTest, OversizeLengthRejectedBeforeAllocation) {
  // 0xFFFFFFFF-byte announcement: must throw kParse from the header alone.
  const unsigned char header[4] = {0xFF, 0xFF, 0xFF, 0xFF};
  ASSERT_EQ(::write(fds_[0], header, 4), 4);
  std::string got;
  try {
    ReadFrame(fds_[1], got);
    FAIL() << "expected ParhdeError(kParse)";
  } catch (const ParhdeError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kParse);
  }
}

TEST_F(ServiceProtocolTest, WriteRejectsOversizePayload) {
  const std::string big(1024, 'x');
  EXPECT_THROW(WriteFrame(fds_[0], big, /*max_bytes=*/16), ParhdeError);
}

TEST(ServiceParseRequest, AppliesDefaults) {
  const LayoutRequest req = ParseRequest("{\"op\":\"layout\",\"graph\":\"g\"}");
  EXPECT_EQ(req.algo, "parhde");
  EXPECT_EQ(req.pivots, "kcenters");
  EXPECT_EQ(req.kernel, "parbfs");
  EXPECT_EQ(req.subspace_dim, 10);
  EXPECT_EQ(req.num_axes, 2);
  EXPECT_EQ(req.seed, 1u);
  EXPECT_EQ(req.deadline_seconds, 0.0);
}

TEST(ServiceParseRequest, ParsesAllFields) {
  const LayoutRequest req = ParseRequest(
      "{\"op\":\"layout\",\"graph\":\"g.mtx\",\"algo\":\"phde\","
      "\"pivots\":\"random\",\"kernel\":\"msbfs\",\"s\":32,\"axes\":3,"
      "\"seed\":7,\"deadline\":2.5,\"id\":\"abc\"}");
  EXPECT_EQ(req.graph, "g.mtx");
  EXPECT_EQ(req.algo, "phde");
  EXPECT_EQ(req.pivots, "random");
  EXPECT_EQ(req.kernel, "msbfs");
  EXPECT_EQ(req.subspace_dim, 32);
  EXPECT_EQ(req.num_axes, 3);
  EXPECT_EQ(req.seed, 7u);
  EXPECT_EQ(req.deadline_seconds, 2.5);
  EXPECT_EQ(req.id, "abc");
}

void ExpectParseFails(const std::string& json, ErrorCode code) {
  try {
    ParseRequest(json);
    FAIL() << "expected failure for " << json;
  } catch (const ParhdeError& e) {
    EXPECT_EQ(e.code(), code) << json;
  }
}

TEST(ServiceParseRequest, RejectsBadRequests) {
  ExpectParseFails("not json", ErrorCode::kParse);
  ExpectParseFails("{\"op\":\"destroy\"}", ErrorCode::kUsage);
  ExpectParseFails("{\"op\":\"layout\"}", ErrorCode::kUsage);  // no graph
  ExpectParseFails("{\"op\":\"layout\",\"graph\":\"g\",\"kernel\":\"warp\"}",
                   ErrorCode::kUsage);
  ExpectParseFails("{\"op\":\"layout\",\"graph\":\"g\",\"s\":0}",
                   ErrorCode::kInvalidValue);
  ExpectParseFails("{\"op\":\"layout\",\"graph\":\"g\",\"s\":100000}",
                   ErrorCode::kInvalidValue);
  ExpectParseFails("{\"op\":\"layout\",\"graph\":\"g\",\"deadline\":-1}",
                   ErrorCode::kInvalidValue);
}

TEST(ServiceResponses, ErrorResponseCarriesTypedCode) {
  const JsonValue v =
      ParseJson(ErrorResponse("req7", ErrorCode::kOverloaded, "queue full"));
  EXPECT_EQ(v.At("status").string, "overloaded");
  EXPECT_EQ(v.At("id").string, "req7");
  EXPECT_EQ(v.At("error").At("exit_code").number, 14.0);
  EXPECT_EQ(v.At("error").At("message").string, "queue full");
}

TEST(ServiceResponses, OkResponseEmbedsBody) {
  const JsonValue v =
      ParseJson(OkResponse("a", "stats", "stats", "{\"x\":1}"));
  EXPECT_EQ(v.At("status").string, "ok");
  EXPECT_EQ(v.At("op").string, "stats");
  EXPECT_EQ(v.At("stats").At("x").number, 1.0);
}

// --------------------------------------------------------------- admission

TEST(ServiceAdmissionTest, ShedsWhenFull) {
  AdmissionQueue q(2);
  EXPECT_TRUE(q.TryPush([] {}));
  EXPECT_TRUE(q.TryPush([] {}));
  EXPECT_FALSE(q.TryPush([] {}));  // full: shed
  const auto stats = q.GetStats();
  EXPECT_EQ(stats.admitted, 2);
  EXPECT_EQ(stats.shed, 1);
  EXPECT_EQ(stats.depth, 2u);
  EXPECT_EQ(stats.peak_depth, 2u);
}

TEST(ServiceAdmissionTest, CloseRefusesNewWorkButDrainsAdmitted) {
  AdmissionQueue q(4);
  int ran = 0;
  ASSERT_TRUE(q.TryPush([&] { ++ran; }));
  ASSERT_TRUE(q.TryPush([&] { ++ran; }));
  q.Close();
  EXPECT_FALSE(q.TryPush([&] { ++ran; }));  // closed: refused
  while (auto job = q.Pop()) (*job)();
  EXPECT_EQ(ran, 2);  // the admitted jobs still ran; Pop then signalled exit
}

TEST(ServiceAdmissionTest, PopBlocksUntilPushOrClose) {
  AdmissionQueue q(4);
  std::atomic<int> ran{0};
  std::thread worker([&] {
    while (auto job = q.Pop()) (*job)();
  });
  for (int i = 0; i < 8; ++i) {
    while (!q.TryPush([&] { ran.fetch_add(1); })) {
      std::this_thread::yield();  // worker drains; retry
    }
  }
  q.Close();
  worker.join();
  EXPECT_EQ(ran.load(), 8);
}

TEST(ServiceAdmissionTest, ConcurrentProducersNeverExceedCapacity) {
  AdmissionQueue q(4);
  std::atomic<std::int64_t> admitted{0};
  std::vector<std::thread> producers;
  for (int t = 0; t < 4; ++t) {
    producers.emplace_back([&] {
      for (int i = 0; i < 64; ++i) {
        if (q.TryPush([] {})) admitted.fetch_add(1);
      }
    });
  }
  for (auto& t : producers) t.join();
  const auto stats = q.GetStats();
  EXPECT_LE(stats.depth, 4u);
  EXPECT_LE(stats.peak_depth, 4u);
  EXPECT_EQ(stats.admitted, admitted.load());
  EXPECT_EQ(stats.admitted + stats.shed, 4 * 64);
}

// ------------------------------------------------------------------- cache

class ServiceCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("parhde_cache_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Writes a chain graph of `n` vertices as an edge list.
  std::string WriteChain(const std::string& name, int n) {
    const std::string path = (dir_ / name).string();
    std::ofstream out(path);
    for (int i = 0; i + 1 < n; ++i) out << i << " " << i + 1 << "\n";
    return path;
  }

  std::string SnapshotDir() { return (dir_ / "snaps").string(); }

  std::filesystem::path dir_;
};

TEST_F(ServiceCacheTest, MissThenStatHit) {
  const std::string path = WriteChain("a.el", 50);
  GraphCache cache(4, "");
  const auto first = cache.Get(path);
  EXPECT_FALSE(first.stat_hit);
  EXPECT_EQ(first.graph->NumVertices(), 50);
  const auto second = cache.Get(path);
  EXPECT_TRUE(second.stat_hit);
  EXPECT_EQ(second.graph.get(), first.graph.get());  // same resident object
  const auto stats = cache.GetStats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.stat_hits, 1);
}

TEST_F(ServiceCacheTest, ContentChangeInvalidates) {
  const std::string path = WriteChain("a.el", 50);
  GraphCache cache(4, "");
  ASSERT_EQ(cache.Get(path).graph->NumVertices(), 50);
  // Different byte count guarantees a stat mismatch even on filesystems
  // with coarse mtime granularity.
  WriteChain("a.el", 60);
  const auto after = cache.Get(path);
  EXPECT_FALSE(after.stat_hit);
  EXPECT_EQ(after.graph->NumVertices(), 60);
}

TEST_F(ServiceCacheTest, EvictsLeastRecentlyUsed) {
  GraphCache cache(1, "");
  const std::string a = WriteChain("a.el", 30);
  const std::string b = WriteChain("b.el", 40);
  ASSERT_FALSE(cache.Get(a).stat_hit);
  ASSERT_FALSE(cache.Get(b).stat_hit);  // evicts a
  EXPECT_EQ(cache.GetStats().evictions, 1);
  EXPECT_EQ(cache.GetStats().resident, 1u);
  EXPECT_FALSE(cache.Get(a).stat_hit);  // a is gone: full reload
}

TEST_F(ServiceCacheTest, SnapshotAcceleratesReload) {
  const std::string path = WriteChain("a.el", 50);
  {
    GraphCache cache(4, SnapshotDir());
    ASSERT_FALSE(cache.Get(path).snapshot_load);  // built, snapshot written
  }
  // A fresh cache (daemon restart) finds the snapshot and skips the build.
  GraphCache fresh(4, SnapshotDir());
  const auto res = fresh.Get(path);
  EXPECT_TRUE(res.snapshot_load);
  EXPECT_EQ(res.graph->NumVertices(), 50);
  EXPECT_EQ(fresh.GetStats().snapshot_loads, 1);
}

TEST_F(ServiceCacheTest, ConcurrentRequestsLoadOnce) {
  const std::string path = WriteChain("a.el", 200);
  GraphCache cache(4, "");
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      const auto res = cache.Get(path);
      if (res.graph && res.graph->NumVertices() == 200) ok.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), 8);
  EXPECT_EQ(cache.GetStats().misses, 1);  // exactly one thread built it
}

TEST_F(ServiceCacheTest, FailedLoadIsNotCached) {
  const std::string path = (dir_ / "bad.el").string();
  {
    std::ofstream out(path);
    out << "0 -3\n";  // negative id: reader throws
  }
  GraphCache cache(4, "");
  EXPECT_THROW(cache.Get(path), ParhdeError);
  // The failure was not cached: a corrected file loads fine.
  WriteChain("bad.el", 20);
  EXPECT_EQ(cache.Get(path).graph->NumVertices(), 20);
}

TEST_F(ServiceCacheTest, MissingFileThrowsIo) {
  GraphCache cache(4, "");
  try {
    cache.Get((dir_ / "absent.el").string());
    FAIL() << "expected ParhdeError(kIo)";
  } catch (const ParhdeError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIo);
  }
}

// --------------------------------------------------------------------- e2e

class ServiceE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (std::string(PARHDE_SERVE_PATH).empty() ||
        std::string(PARHDE_LOADGEN_PATH).empty()) {
      GTEST_SKIP() << "service binary paths not configured";
    }
    dir_ = std::filesystem::temp_directory_path() /
           ("parhde_e2e_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
    socket_ = (dir_ / "svc.sock").string();
    graph_ = WriteGrid("g.el", 20, 20);
    big_graph_ = WriteGrid("big.el", 90, 90);
  }

  void TearDown() override {
    if (daemon_pid_ > 0) {
      ::kill(daemon_pid_, SIGKILL);
      int status = 0;
      ::waitpid(daemon_pid_, &status, 0);
    }
    std::filesystem::remove_all(dir_);
  }

  /// Writes a rows x cols grid as an edge list; the workload graph.
  std::string WriteGrid(const std::string& name, int rows, int cols) {
    const std::string path = (dir_ / name).string();
    std::ofstream out(path);
    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c < cols; ++c) {
        const int v = r * cols + c;
        if (c + 1 < cols) out << v << " " << v + 1 << "\n";
        if (r + 1 < rows) out << v << " " << v + cols << "\n";
      }
    }
    return path;
  }

  void StartDaemon(const std::string& extra_flags) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: silence the daemon and exec it.
      const std::string log = (dir_ / "serve.log").string();
      const int out = ::open(log.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
      if (out >= 0) {
        ::dup2(out, 1);
        ::dup2(out, 2);
        ::close(out);
      }
      std::vector<std::string> args = {PARHDE_SERVE_PATH,
                                       "--socket=" + socket_};
      std::istringstream flags(extra_flags);
      std::string flag;
      while (flags >> flag) args.push_back(flag);
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (auto& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      ::execv(PARHDE_SERVE_PATH, argv.data());
      ::_exit(127);
    }
    daemon_pid_ = pid;
  }

  /// Connects to the daemon, retrying while it binds. Returns the fd.
  int Connect() {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                  socket_.c_str());
    for (int attempt = 0; attempt < 100; ++attempt) {
      const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      EXPECT_GE(fd, 0);
      if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
          0) {
        return fd;
      }
      ::close(fd);
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    ADD_FAILURE() << "daemon never came up on " << socket_;
    return -1;
  }

  JsonValue Rpc(int fd, const std::string& request) {
    WriteFrame(fd, request);
    std::string payload;
    EXPECT_TRUE(ReadFrame(fd, payload));
    return ParseJson(payload);
  }

  static std::vector<std::string> PhaseNames(const JsonValue& report) {
    std::vector<std::string> names;
    for (const auto& phase : report.At("phases").array) {
      names.push_back(phase.At("name").string);
    }
    return names;
  }

  /// Exit code of `cmd`, with output captured to the test log file.
  int Run(const std::string& cmd) {
    const int status = std::system(
        (cmd + " > " + (dir_ / "run.log").string() + " 2>&1").c_str());
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }

  std::filesystem::path dir_;
  std::string socket_;
  std::string graph_;
  std::string big_graph_;
  pid_t daemon_pid_ = -1;
};

TEST_F(ServiceE2eTest, PingAndStats) {
  StartDaemon("");
  const int fd = Connect();
  ASSERT_GE(fd, 0);
  EXPECT_EQ(Rpc(fd, "{\"op\":\"ping\"}").At("status").string, "ok");
  const JsonValue stats = Rpc(fd, "{\"op\":\"stats\"}");
  EXPECT_EQ(stats.At("status").string, "ok");
  EXPECT_TRUE(stats.At("stats").Has("queue"));
  EXPECT_TRUE(stats.At("stats").Has("cache"));
  ::close(fd);
}

TEST_F(ServiceE2eTest, SustainsConcurrentClients) {
  // The acceptance bar: 64 concurrent requests against a cached graph,
  // zero failures. Queue 64 holds a full burst even with slow workers.
  StartDaemon("--workers=2 --queue=64");
  const std::string summary = (dir_ / "loadgen.json").string();
  const int code = Run(std::string(PARHDE_LOADGEN_PATH) +
                       " --socket=" + socket_ + " --graph=" + graph_ +
                       " --clients=8 --requests=8 --s=6 --fail-on-error" +
                       " --json=" + summary);
  EXPECT_EQ(code, 0);
  const JsonValue report = ParseJsonFile(summary);
  EXPECT_EQ(report.At("metrics").At("ok").number, 64.0);
  EXPECT_EQ(report.At("metrics").At("failed").number, 0.0);
  EXPECT_EQ(report.At("metrics").At("overloaded").number, 0.0);
}

TEST_F(ServiceE2eTest, CacheHitSkipsGraphLoadEntirely) {
  StartDaemon("--snapshots=" + (dir_ / "snaps").string());
  const int fd = Connect();
  ASSERT_GE(fd, 0);
  const std::string request =
      "{\"op\":\"layout\",\"graph\":\"" + graph_ + "\",\"s\":6}";

  const JsonValue first = Rpc(fd, request);
  ASSERT_EQ(first.At("status").string, "ok");
  const JsonValue& r1 = first.At("report");
  EXPECT_EQ(r1.At("metrics").At("cache_hit").number, 0.0);
  EXPECT_GT(r1.At("metrics").At("load_seconds").number, 0.0);
  const auto phases1 = PhaseNames(r1);
  EXPECT_NE(std::find(phases1.begin(), phases1.end(), "Load"), phases1.end());

  // Same graph again: served from the resident cache — no Load phase, no
  // load time. This is the "skips IO/build entirely" acceptance check.
  const JsonValue second = Rpc(fd, request);
  ASSERT_EQ(second.At("status").string, "ok");
  const JsonValue& r2 = second.At("report");
  EXPECT_EQ(r2.At("metrics").At("cache_hit").number, 1.0);
  EXPECT_EQ(r2.At("metrics").At("load_seconds").number, 0.0);
  const auto phases2 = PhaseNames(r2);
  EXPECT_EQ(std::find(phases2.begin(), phases2.end(), "Load"), phases2.end());
  ::close(fd);
}

TEST_F(ServiceE2eTest, QueueOverflowShedsWithTypedError) {
  // One worker, queue of one: a pipelined burst of 8 requests on the big
  // graph means the worker is still busy with the first when the later
  // frames arrive, so most of the burst must shed.
  StartDaemon("--workers=1 --queue=1");
  const int fd = Connect();
  ASSERT_GE(fd, 0);
  const std::string request =
      "{\"op\":\"layout\",\"graph\":\"" + big_graph_ + "\",\"s\":8}";
  constexpr int kBurst = 8;
  for (int i = 0; i < kBurst; ++i) WriteFrame(fd, request);
  int ok = 0;
  int overloaded = 0;
  for (int i = 0; i < kBurst; ++i) {
    std::string payload;
    ASSERT_TRUE(ReadFrame(fd, payload));
    const JsonValue response = ParseJson(payload);
    const std::string status = response.At("status").string;
    if (status == "ok") {
      ++ok;
    } else if (status == "overloaded") {
      ++overloaded;
      EXPECT_EQ(response.At("error").At("exit_code").number, 14.0);
    } else {
      ADD_FAILURE() << "unexpected status " << status;
    }
  }
  EXPECT_GE(ok, 1);          // the in-flight request completed
  EXPECT_GE(overloaded, 1);  // and the burst overflowed the bounded queue
  ::close(fd);
}

TEST_F(ServiceE2eTest, DeadlineExpiryReturnsTypedError) {
  StartDaemon("");
  const int fd = Connect();
  ASSERT_GE(fd, 0);
  const JsonValue response =
      Rpc(fd, "{\"op\":\"layout\",\"graph\":\"" + big_graph_ +
                  "\",\"s\":8,\"deadline\":1e-6}");
  EXPECT_EQ(response.At("status").string, "deadline-exceeded");
  EXPECT_EQ(response.At("error").At("exit_code").number, 11.0);
  ::close(fd);
}

TEST_F(ServiceE2eTest, ConcurrentDeadlineAndPlainRequestsStayIsolated) {
  // A short-deadline request and a deadline-free request in flight at the
  // same time: with per-request execution contexts there is no exclusive
  // deadline lane, so the doomed request must fail fast on ITS token
  // while the sibling completes with a report containing exactly its own
  // counters — no leaked deadline expiry, no missing work.
  StartDaemon("--workers=2");
  const std::string plain_request = "{\"op\":\"layout\",\"graph\":\"" +
                                    big_graph_ +
                                    "\",\"s\":8,\"id\":\"plain\"}";

  // Serial reference: the same plain request with the daemon otherwise
  // idle. Counter totals are deterministic for a fixed request, so the
  // concurrent run must reproduce them exactly.
  const int fd_ref = Connect();
  ASSERT_GE(fd_ref, 0);
  const JsonValue ref = Rpc(fd_ref, plain_request);
  ASSERT_EQ(ref.At("status").string, "ok");
  const double ref_frontier = ref.At("report")
                                  .At("counters")
                                  .At("bfs.frontier_vertices")
                                  .number;
  ASSERT_GT(ref_frontier, 0.0);
  ::close(fd_ref);

  const int fd_plain = Connect();
  const int fd_doomed = Connect();
  ASSERT_GE(fd_plain, 0);
  ASSERT_GE(fd_doomed, 0);
  WriteFrame(fd_plain, plain_request);
  WriteFrame(fd_doomed, "{\"op\":\"layout\",\"graph\":\"" + big_graph_ +
                            "\",\"s\":8,\"deadline\":1e-6,\"id\":\"doomed\"}");

  // The doomed request dies on its own deadline with the typed error.
  std::string payload;
  ASSERT_TRUE(ReadFrame(fd_doomed, payload));
  const JsonValue doomed = ParseJson(payload);
  EXPECT_EQ(doomed.At("status").string, "deadline-exceeded");
  EXPECT_EQ(doomed.At("id").string, "doomed");

  // The sibling completes, and its report is self-consistent: the same
  // counter totals as the idle-daemon reference, and zero deadline
  // expirations — the doomed request's expiry stayed in its own context.
  ASSERT_TRUE(ReadFrame(fd_plain, payload));
  const JsonValue plain = ParseJson(payload);
  ASSERT_EQ(plain.At("status").string, "ok");
  EXPECT_EQ(plain.At("id").string, "plain");
  const JsonValue& counters = plain.At("report").At("counters");
  EXPECT_EQ(counters.At("bfs.frontier_vertices").number, ref_frontier);
  EXPECT_EQ(counters.At("deadline.expirations").number, 0.0);
  ::close(fd_plain);
  ::close(fd_doomed);
}

TEST_F(ServiceE2eTest, SigtermDrainsInFlightRequests) {
  StartDaemon("--workers=1");
  const int fd = Connect();
  ASSERT_GE(fd, 0);
  // Warm up so the connection's reader is definitely live, then put a
  // slow request in flight and fire the drain at it.
  ASSERT_EQ(Rpc(fd, "{\"op\":\"ping\"}").At("status").string, "ok");
  WriteFrame(fd, "{\"op\":\"layout\",\"graph\":\"" + big_graph_ +
                     "\",\"s\":8,\"id\":\"inflight\"}");
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  ASSERT_EQ(::kill(daemon_pid_, SIGTERM), 0);

  // The admitted request completes and its response flushes before exit.
  std::string payload;
  ASSERT_TRUE(ReadFrame(fd, payload));
  const JsonValue response = ParseJson(payload);
  EXPECT_EQ(response.At("status").string, "ok");
  EXPECT_EQ(response.At("id").string, "inflight");
  ::close(fd);

  int status = 0;
  ASSERT_EQ(::waitpid(daemon_pid_, &status, 0), daemon_pid_);
  daemon_pid_ = -1;
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);  // clean drain
}

}  // namespace
}  // namespace parhde::service
