#include "util/fibonacci.hpp"

#include <gtest/gtest.h>

namespace parhde {
namespace {

TEST(FibonacciSequence, FirstValues) {
  const auto fib = FibonacciSequence(10);
  const std::vector<std::int64_t> expected{0, 1, 1, 2, 3, 5, 8, 13, 21, 34, 55};
  EXPECT_EQ(fib, expected);
}

TEST(FibonacciSequence, CapsBeforeOverflow) {
  const auto fib = FibonacciSequence(1000);
  ASSERT_EQ(fib.size(), 92u);  // F(0)..F(91)
  for (std::size_t i = 2; i < fib.size(); ++i) {
    EXPECT_EQ(fib[i], fib[i - 1] + fib[i - 2]);
    EXPECT_GT(fib[i], 0);  // no overflow wraparound
  }
}

TEST(FibonacciBinner, BoundariesStrictlyIncrease) {
  FibonacciBinner binner(1000000);
  std::int64_t prev = 0;
  for (int b = 0; b < binner.NumBins(); ++b) {
    EXPECT_GT(binner.UpperBound(b), prev);
    prev = binner.UpperBound(b);
  }
  EXPECT_GT(prev, 1000000);
}

TEST(FibonacciBinner, BinIndexMatchesBoundaries) {
  FibonacciBinner binner(100);
  // Bin i covers [x_i, x_{i+1}) with boundaries 0,1,2,3,5,8,...
  EXPECT_EQ(binner.BinIndex(0), 0);
  EXPECT_EQ(binner.BinIndex(1), 1);
  EXPECT_EQ(binner.BinIndex(2), 2);
  EXPECT_EQ(binner.BinIndex(3), 3);
  EXPECT_EQ(binner.BinIndex(4), 3);  // [3, 5)
  EXPECT_EQ(binner.BinIndex(5), 4);  // [5, 8)
  EXPECT_EQ(binner.BinIndex(7), 4);
  EXPECT_EQ(binner.BinIndex(8), 5);  // [8, 13)
}

TEST(FibonacciBinner, ValuesBeyondMaxClampToLastBin) {
  FibonacciBinner binner(10);
  const int last = binner.NumBins() - 1;
  binner.Add(1000000);
  EXPECT_EQ(binner.Count(last), 1);
}

TEST(FibonacciBinner, CountsAccumulate) {
  FibonacciBinner binner(100);
  binner.Add(5);
  binner.Add(6, 3);
  binner.Add(7);
  EXPECT_EQ(binner.Count(binner.BinIndex(5)), 5);
  EXPECT_EQ(binner.TotalCount(), 5);
}

TEST(FibonacciBinner, TotalCountSumsAllBins) {
  FibonacciBinner binner(1000);
  for (std::int64_t v = 0; v < 500; ++v) binner.Add(v);
  EXPECT_EQ(binner.TotalCount(), 500);
  std::int64_t manual = 0;
  for (int b = 0; b < binner.NumBins(); ++b) manual += binner.Count(b);
  EXPECT_EQ(manual, 500);
}

class BinnerPropertySweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(BinnerPropertySweep, EveryValueFallsInItsBin) {
  const std::int64_t max_value = GetParam();
  FibonacciBinner binner(max_value);
  for (std::int64_t v = 0; v <= max_value; v = v * 3 / 2 + 1) {
    const int bin = binner.BinIndex(v);
    ASSERT_GE(bin, 0);
    ASSERT_LT(bin, binner.NumBins());
    // v must be < upper bound of its bin and >= upper bound of bin-1.
    EXPECT_LT(v, binner.UpperBound(bin));
    if (bin > 0) {
      EXPECT_GE(v, binner.UpperBound(bin - 1));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(MaxValues, BinnerPropertySweep,
                         ::testing::Values(1, 10, 100, 12345, 1000000));

}  // namespace
}  // namespace parhde
