#include "hde/pivot_mds.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace parhde {
namespace {

double Variance(const std::vector<double>& v) {
  double mean = 0.0;
  for (const double x : v) mean += x;
  mean /= static_cast<double>(v.size());
  double var = 0.0;
  for (const double x : v) var += (x - mean) * (x - mean);
  return var / static_cast<double>(v.size());
}

TEST(PivotMds, ProducesFiniteNonDegenerateLayout) {
  const CsrGraph g = BuildCsrGraph(400, GenGrid2d(20, 20));
  HdeOptions options;
  options.subspace_dim = 8;
  options.start_vertex = 0;
  const HdeResult result = RunPivotMds(g, options);
  EXPECT_GT(Variance(result.layout.x), 1e-9);
  EXPECT_GT(Variance(result.layout.y), 1e-9);
  for (const double v : result.layout.y) EXPECT_TRUE(std::isfinite(v));
}

TEST(PivotMds, RecordsDblCenterPhase) {
  const CsrGraph g = BuildCsrGraph(225, GenGrid2d(15, 15));
  HdeOptions options;
  options.subspace_dim = 5;
  options.start_vertex = 0;
  const HdeResult result = RunPivotMds(g, options);
  EXPECT_GT(result.timings.Get(phase::kDblCenter), 0.0);
  EXPECT_GT(result.timings.Get(phase::kMatMul), 0.0);
  EXPECT_DOUBLE_EQ(result.timings.Get(phase::kColCenter), 0.0);
}

TEST(PivotMds, ChainRecoversLinearGeometry) {
  // Classical MDS on a path recovers collinear points in order; PivotMDS
  // approximates this.
  const CsrGraph g = BuildCsrGraph(80, GenChain(80));
  HdeOptions options;
  options.subspace_dim = 8;
  options.start_vertex = 0;
  const HdeResult result = RunPivotMds(g, options);
  int increasing = 0, decreasing = 0;
  for (std::size_t v = 0; v + 1 < 80; ++v) {
    if (result.layout.x[v + 1] > result.layout.x[v]) ++increasing;
    if (result.layout.x[v + 1] < result.layout.x[v]) ++decreasing;
  }
  EXPECT_TRUE(increasing >= 75 || decreasing >= 75);
}

TEST(PivotMds, GridDistancesRoughlyPreserved) {
  // MDS objective: layout distance should correlate with graph distance.
  // Spot-check: corner pairs farther apart than adjacent pairs.
  const vid_t rows = 12, cols = 12;
  const CsrGraph g = BuildCsrGraph(rows * cols, GenGrid2d(rows, cols));
  HdeOptions options;
  options.subspace_dim = 10;
  options.start_vertex = 0;
  const HdeResult result = RunPivotMds(g, options);
  auto dist2 = [&](vid_t a, vid_t b) {
    const double dx = result.layout.x[static_cast<std::size_t>(a)] -
                      result.layout.x[static_cast<std::size_t>(b)];
    const double dy = result.layout.y[static_cast<std::size_t>(a)] -
                      result.layout.y[static_cast<std::size_t>(b)];
    return dx * dx + dy * dy;
  };
  const vid_t corner_a = 0;
  const vid_t corner_b = rows * cols - 1;
  EXPECT_GT(dist2(corner_a, corner_b), 10.0 * dist2(0, 1));
}

TEST(PivotMds, DeterministicForSeed) {
  const CsrGraph g = BuildCsrGraph(225, GenGrid2d(15, 15));
  HdeOptions options;
  options.subspace_dim = 5;
  options.seed = 29;
  const HdeResult a = RunPivotMds(g, options);
  const HdeResult b = RunPivotMds(g, options);
  for (std::size_t v = 0; v < a.layout.x.size(); ++v) {
    EXPECT_DOUBLE_EQ(a.layout.x[v], b.layout.x[v]);
    EXPECT_DOUBLE_EQ(a.layout.y[v], b.layout.y[v]);
  }
}

}  // namespace
}  // namespace parhde
