// End-to-end integration tests: the full pipeline the paper's evaluation
// exercises — generate, preprocess, lay out, draw, and the cross-algorithm
// comparisons the benchmarks rely on.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "bfs/serial_bfs.hpp"
#include "draw/layout.hpp"
#include "draw/png_writer.hpp"
#include "draw/raster.hpp"
#include "graph/builder.hpp"
#include "graph/components.hpp"
#include "graph/gap_stats.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/ordering.hpp"
#include "hde/parhde.hpp"
#include "hde/phde.hpp"
#include "hde/pivot_mds.hpp"
#include "hde/prior_baseline.hpp"
#include "linalg/laplacian_ops.hpp"
#include "linalg/lobpcg.hpp"

namespace parhde {
namespace {

double NormalizedEnergy(const CsrGraph& g, const std::vector<double>& axis) {
  std::vector<double> x = axis;
  double mean = 0.0;
  for (const double v : x) mean += v;
  mean /= static_cast<double>(x.size());
  double norm = 0.0;
  for (auto& v : x) {
    v -= mean;
    norm += v * v;
  }
  norm = std::sqrt(norm);
  if (norm <= 0.0) return 0.0;
  for (auto& v : x) v /= norm;
  return LaplacianQuadraticForm(g, x);
}

/// Preprocessing pipeline of §4.1: clean, extract LCC, verify invariants.
CsrGraph Preprocess(vid_t n, const EdgeList& edges) {
  const CsrGraph raw = BuildCsrGraph(n, edges);
  const auto extraction = LargestComponent(raw);
  EXPECT_TRUE(extraction.graph.Validate());
  EXPECT_TRUE(IsConnected(extraction.graph));
  return extraction.graph;
}

TEST(Integration, FullPipelineOnEveryGraphFamily) {
  struct Family {
    const char* name;
    vid_t n;
    EdgeList edges;
  };
  std::vector<Family> families;
  families.push_back({"urand", 2000, GenUniformRandom(2000, 10000, 1)});
  families.push_back({"kron", 1 << 11, GenKronecker(11, 8, 2)});
  families.push_back({"road", 900, GenRoad(30, 30, 0.1, 3)});
  families.push_back(
      {"barth5", PlateNumVertices(40, 40), GenPlateWithHoles(40, 40)});
  families.push_back({"grid3d", 512, GenGrid3d(8, 8, 8)});

  for (auto& family : families) {
    SCOPED_TRACE(family.name);
    const CsrGraph g = Preprocess(family.n, family.edges);
    ASSERT_GE(g.NumVertices(), 100);

    HdeOptions options;
    options.subspace_dim = 10;
    options.start_vertex = 0;
    const HdeResult result = RunParHde(g, options);
    ASSERT_EQ(result.layout.x.size(),
              static_cast<std::size_t>(g.NumVertices()));
    for (const double v : result.layout.x) ASSERT_TRUE(std::isfinite(v));

    // The layout must be meaningfully better than random on every family.
    Layout random;
    random.x.resize(result.layout.x.size());
    random.y.resize(result.layout.y.size());
    for (std::size_t i = 0; i < random.x.size(); ++i) {
      random.x[i] = static_cast<double>((i * 48271) % 10007);
      random.y[i] = static_cast<double>((i * 16807) % 10007);
    }
    EXPECT_LT(NormalizedEnergy(g, result.layout.x),
              NormalizedEnergy(g, random.x));
  }
}

TEST(Integration, AllFourAlgorithmsAgreeOnChainOrdering) {
  // ParHDE, PHDE, PivotMDS and the prior baseline must all recover the
  // linear order of a path (up to reflection) — the strongest cross-check
  // that the pipelines compute compatible embeddings.
  const CsrGraph g = BuildCsrGraph(60, GenChain(60));
  HdeOptions options;
  options.subspace_dim = 8;
  options.start_vertex = 0;

  auto monotone_fraction = [](const std::vector<double>& x) {
    int inc = 0, dec = 0;
    for (std::size_t v = 0; v + 1 < x.size(); ++v) {
      if (x[v + 1] > x[v]) ++inc;
      if (x[v + 1] < x[v]) ++dec;
    }
    return static_cast<double>(std::max(inc, dec)) /
           static_cast<double>(x.size() - 1);
  };

  EXPECT_GT(monotone_fraction(RunParHde(g, options).layout.x), 0.9);
  EXPECT_GT(monotone_fraction(RunPhde(g, options).layout.x), 0.9);
  EXPECT_GT(monotone_fraction(RunPivotMds(g, options).layout.x), 0.9);
  EXPECT_GT(monotone_fraction(RunPriorHde(g, options).layout.x), 0.9);
}

TEST(Integration, MatrixMarketToDrawingRoundTrip) {
  // Write a generated graph to MatrixMarket, read it back, lay out, render
  // to PNG bytes — the complete user workflow of the README quickstart.
  const CsrGraph original = Preprocess(400, GenGrid2d(20, 20));
  std::stringstream mm;
  WriteMatrixMarket(original, mm);
  const MatrixMarketData data = ReadMatrixMarket(mm);
  const CsrGraph loaded = BuildCsrGraph(data.n, data.edges);
  ASSERT_EQ(loaded.NumEdges(), original.NumEdges());

  HdeOptions options;
  options.subspace_dim = 10;
  options.start_vertex = 0;
  const HdeResult result = RunParHde(loaded, options);
  const PixelLayout px = NormalizeToCanvas(result.layout, 256, 256);
  const Canvas canvas = DrawGraph(loaded, px);
  const auto png = EncodePng(canvas);
  EXPECT_GT(png.size(), 1000u);
  EXPECT_EQ(png[1], 'P');
}

TEST(Integration, OrderingAblationChangesGapsNotLayout) {
  // §4.4: permuting vertex ids changes memory locality (gaps) but the
  // algorithm's output is the same graph drawn the same way, modulo the
  // relabeling. Verify energy is permutation-invariant.
  const CsrGraph g = Preprocess(900, GenGrid2d(30, 30));
  const Permutation perm = RandomPermutation(g.NumVertices(), 31);
  const CsrGraph pg = ApplyPermutation(g, perm);

  EXPECT_GT(ComputeGapSummary(pg).mean_gap, ComputeGapSummary(g).mean_gap);

  HdeOptions options;
  options.subspace_dim = 10;
  options.start_vertex = 0;
  HdeOptions perm_options = options;
  perm_options.start_vertex = perm[0];

  const HdeResult a = RunParHde(g, options);
  const HdeResult b = RunParHde(pg, perm_options);
  // Same pivots up to relabeling implies the same subspace and energies.
  const double ea = NormalizedEnergy(g, a.layout.x);
  const double eb = NormalizedEnergy(pg, b.layout.x);
  EXPECT_NEAR(ea, eb, 0.25 * std::max(ea, eb));
}

TEST(Integration, SubspaceDimensionImprovesQuality) {
  // More pivots -> richer subspace -> layout energy does not get worse.
  const CsrGraph g = Preprocess(PlateNumVertices(40, 40),
                                GenPlateWithHoles(40, 40));
  HdeOptions small;
  small.subspace_dim = 3;
  small.start_vertex = 0;
  HdeOptions large = small;
  large.subspace_dim = 30;
  const double e_small = NormalizedEnergy(g, RunParHde(g, small).layout.x);
  const double e_large = NormalizedEnergy(g, RunParHde(g, large).layout.x);
  EXPECT_LE(e_large, e_small * 1.5);
}

TEST(Integration, ParHdeEigenvaluesAreRayleighRitzUpperBounds) {
  // ParHDE solves the (L, D) eigenproblem restricted to the distance
  // subspace; by Rayleigh-Ritz its projected eigenvalues bound the true
  // ones from above, and the bound tightens as s grows. LOBPCG supplies
  // the "true" eigenvalues.
  const CsrGraph g = Preprocess(15 * 22, GenGrid2d(15, 22));

  LobpcgOptions exact_options;
  exact_options.tolerance = 1e-9;
  exact_options.max_iterations = 3000;
  const LobpcgResult exact = Lobpcg(g, exact_options);
  ASSERT_TRUE(exact.converged);

  double previous_bound = kInfWeight;
  for (const int s : {4, 10, 25}) {
    HdeOptions options;
    options.subspace_dim = s;
    options.start_vertex = 0;
    const HdeResult hde = RunParHde(g, options);
    // Upper bound (allow tiny numerical slack).
    EXPECT_GE(hde.axis_eigenvalue[0], exact.eigenvalues[0] - 1e-9)
        << "s=" << s;
    EXPECT_GE(hde.axis_eigenvalue[1], exact.eigenvalues[1] - 1e-9)
        << "s=" << s;
    // Monotone improvement with a richer subspace (modulo drops; allow 5%).
    EXPECT_LE(hde.axis_eigenvalue[0], previous_bound * 1.05) << "s=" << s;
    previous_bound = hde.axis_eigenvalue[0];
  }
  // At s=25 the subspace approximation should be quite tight.
  EXPECT_LT(previous_bound, 3.0 * exact.eigenvalues[0]);
}

TEST(Integration, PhaseTimingsSumToTotal) {
  const CsrGraph g = Preprocess(400, GenGrid2d(20, 20));
  HdeOptions options;
  options.subspace_dim = 8;
  options.start_vertex = 0;
  const HdeResult result = RunParHde(g, options);
  double sum = 0.0;
  for (const auto& name : result.timings.Names()) {
    sum += result.timings.Get(name);
  }
  EXPECT_DOUBLE_EQ(sum, result.timings.Total());
  EXPECT_NEAR(result.timings.Percent(phase::kBfs) +
                  result.timings.Percent(phase::kBfsOther) +
                  result.timings.Percent(phase::kDOrtho) +
                  result.timings.Percent(phase::kTripleProdLs) +
                  result.timings.Percent(phase::kTripleProdGemm) +
                  result.timings.Percent(phase::kEigensolve) +
                  result.timings.Percent(phase::kOther),
              100.0, 1e-9);
}

}  // namespace
}  // namespace parhde
