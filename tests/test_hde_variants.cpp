// Tests for the ParHDE option extensions: coupled BFS+DOrtho scheduling
// (§4.4) and p-axis (3-D) layouts (§2.1).
#include <gtest/gtest.h>

#include <cmath>

#include "graph/builder.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "hde/parhde.hpp"

namespace parhde {
namespace {

TEST(CoupledOrtho, IdenticalResultToDecoupled) {
  // Coupling only changes the execution schedule; with the same pivots and
  // MGS the layout must match the decoupled run exactly.
  const CsrGraph g = BuildCsrGraph(15 * 22, GenGrid2d(15, 22));
  HdeOptions decoupled;
  decoupled.subspace_dim = 8;
  decoupled.start_vertex = 0;
  HdeOptions coupled = decoupled;
  coupled.coupled_bfs_ortho = true;

  const HdeResult a = RunParHde(g, decoupled);
  const HdeResult b = RunParHde(g, coupled);
  EXPECT_EQ(a.pivots, b.pivots);
  EXPECT_EQ(a.kept_columns, b.kept_columns);
  ASSERT_EQ(a.layout.x.size(), b.layout.x.size());
  for (std::size_t v = 0; v < a.layout.x.size(); ++v) {
    EXPECT_NEAR(a.layout.x[v], b.layout.x[v], 1e-9);
    EXPECT_NEAR(a.layout.y[v], b.layout.y[v], 1e-9);
  }
}

TEST(CoupledOrtho, StillRecordsBothPhases) {
  const CsrGraph g = BuildCsrGraph(400, GenGrid2d(20, 20));
  HdeOptions options;
  options.subspace_dim = 6;
  options.start_vertex = 0;
  options.coupled_bfs_ortho = true;
  const HdeResult result = RunParHde(g, options);
  EXPECT_GT(result.timings.Get(phase::kBfs), 0.0);
  EXPECT_GT(result.timings.Get(phase::kDOrtho), 0.0);
}

TEST(CoupledOrtho, FallsBackWithCgs) {
  // CGS needs all columns up front (§4.4), so the coupled flag is ignored;
  // the run must still succeed.
  const CsrGraph g = BuildCsrGraph(225, GenGrid2d(15, 15));
  HdeOptions options;
  options.subspace_dim = 6;
  options.start_vertex = 0;
  options.coupled_bfs_ortho = true;
  options.gs_kind = GramSchmidtKind::Classical;
  const HdeResult result = RunParHde(g, options);
  EXPECT_EQ(result.layout.x.size(), 225u);
}

TEST(MultiAxis, ThreeAxesProduced) {
  const CsrGraph g = BuildCsrGraph(512, GenGrid3d(8, 8, 8));
  HdeOptions options;
  options.subspace_dim = 10;
  options.start_vertex = 0;
  options.num_axes = 3;
  const HdeResult result = RunParHde(g, options);
  ASSERT_EQ(result.axes.Cols(), 3u);
  ASSERT_EQ(result.eigenvalues.size(), 3u);
  EXPECT_LE(result.eigenvalues[0], result.eigenvalues[1] + 1e-12);
  EXPECT_LE(result.eigenvalues[1], result.eigenvalues[2] + 1e-12);
  for (std::size_t c = 0; c < 3; ++c) {
    for (const double v : result.axes.Col(c)) {
      ASSERT_TRUE(std::isfinite(v));
    }
  }
}

TEST(MultiAxis, FirstTwoAxesMatchLayout) {
  const CsrGraph g = BuildCsrGraph(400, GenGrid2d(20, 20));
  HdeOptions options;
  options.subspace_dim = 8;
  options.start_vertex = 0;
  options.num_axes = 3;
  const HdeResult result = RunParHde(g, options);
  for (std::size_t v = 0; v < 400; ++v) {
    EXPECT_DOUBLE_EQ(result.layout.x[v], result.axes.At(v, 0));
    EXPECT_DOUBLE_EQ(result.layout.y[v], result.axes.At(v, 1));
  }
}

TEST(MultiAxis, SingleAxisHasZeroY) {
  const CsrGraph g = BuildCsrGraph(100, GenChain(100));
  HdeOptions options;
  options.subspace_dim = 6;
  options.start_vertex = 0;
  options.num_axes = 1;
  const HdeResult result = RunParHde(g, options);
  EXPECT_EQ(result.axes.Cols(), 1u);
  for (const double y : result.layout.y) EXPECT_DOUBLE_EQ(y, 0.0);
}

TEST(MultiAxis, AxesCappedByKeptColumns) {
  // Requesting more axes than surviving subspace dimensions must clamp.
  const CsrGraph g = BuildCsrGraph(64, GenRing(64));
  HdeOptions options;
  options.subspace_dim = 3;
  options.start_vertex = 0;
  options.num_axes = 10;
  const HdeResult result = RunParHde(g, options);
  EXPECT_LE(result.axes.Cols(), static_cast<std::size_t>(result.kept_columns));
  EXPECT_EQ(result.eigenvalues.size(), result.axes.Cols());
}

TEST(MultiAxis, Grid3dThirdAxisAddsInformation) {
  // On a 3-D grid the third spectral axis separates the z-dimension: its
  // variance must be non-trivial (not a numerical zero vector).
  const CsrGraph g = BuildCsrGraph(1000, GenGrid3d(10, 10, 10));
  HdeOptions options;
  options.subspace_dim = 12;
  options.start_vertex = 0;
  options.num_axes = 3;
  const HdeResult result = RunParHde(g, options);
  double mean = 0.0, var = 0.0;
  const auto axis = result.axes.Col(2);
  for (const double v : axis) mean += v;
  mean /= static_cast<double>(axis.size());
  for (const double v : axis) var += (v - mean) * (v - mean);
  EXPECT_GT(var / static_cast<double>(axis.size()), 1e-9);
}

}  // namespace
}  // namespace parhde
