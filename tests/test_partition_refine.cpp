#include "hde/partition_refine.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "hde/parhde.hpp"
#include "hde/refine.hpp"

namespace parhde {
namespace {

TEST(BoundarySize, AllSameLabelIsZero) {
  const CsrGraph g = BuildCsrGraph(100, GenGrid2d(10, 10));
  EXPECT_EQ(BoundarySize(g, std::vector<int>(100, 0)), 0);
}

TEST(BoundarySize, CleanBisectionOfGrid) {
  // Split an 8x8 grid into top/bottom halves: 16 boundary vertices.
  const CsrGraph g = BuildCsrGraph(64, GenGrid2d(8, 8));
  std::vector<int> labels(64);
  for (vid_t v = 0; v < 64; ++v) labels[static_cast<std::size_t>(v)] = v / 32;
  EXPECT_EQ(BoundarySize(g, labels), 16);
}

TEST(RefinePartition, NeverIncreasesCut) {
  const CsrGraph g = BuildCsrGraph(400, GenGrid2d(20, 20));
  // Deliberately bad labels: checkerboard by parity of (row+col).
  std::vector<int> labels(400);
  for (vid_t r = 0; r < 20; ++r) {
    for (vid_t c = 0; c < 20; ++c) {
      labels[static_cast<std::size_t>(r * 20 + c)] = (r + c) % 2;
    }
  }
  const RefinePartitionResult result = RefinePartition(g, labels, 2);
  EXPECT_LE(result.final_cut, result.initial_cut);
  EXPECT_LT(result.final_cut, result.initial_cut / 2);  // checkerboard is awful
}

TEST(RefinePartition, RespectsBalance) {
  const CsrGraph g = BuildCsrGraph(400, GenGrid2d(20, 20));
  std::vector<int> labels(400);
  for (vid_t v = 0; v < 400; ++v) labels[static_cast<std::size_t>(v)] = v % 4;
  RefinePartitionOptions options;
  options.balance_tolerance = 0.05;
  RefinePartition(g, labels, 4, options);
  const auto sizes = PartSizes(labels, 4);
  for (const vid_t s : sizes) {
    EXPECT_LE(s, static_cast<vid_t>(1.05 * 100 + 1));
  }
}

TEST(RefinePartition, FixedPointOnPerfectPartition) {
  // A geometric half-split of a grid is locally optimal: no vertex move
  // with positive gain exists, so refinement stops after one pass.
  const CsrGraph g = BuildCsrGraph(64, GenGrid2d(8, 8));
  std::vector<int> labels(64);
  for (vid_t v = 0; v < 64; ++v) labels[static_cast<std::size_t>(v)] = v / 32;
  const RefinePartitionResult result = RefinePartition(g, labels, 2);
  EXPECT_EQ(result.moves, 0);
  EXPECT_EQ(result.final_cut, result.initial_cut);
}

TEST(RefinePartition, ImprovesHdePartition) {
  // The paper's §4.5.4 workflow: geometric partition from ParHDE coords,
  // then a KL-style boundary pass; the pass should help or hold.
  const CsrGraph g = BuildCsrGraph(900, GenGrid2d(30, 30));
  HdeOptions options;
  options.subspace_dim = 10;
  options.start_vertex = 0;
  const HdeResult hde = RunParHde(g, options);
  std::vector<int> labels = CoordinateBisection(hde.layout, 4);
  const RefinePartitionResult result = RefinePartition(g, labels, 4);
  EXPECT_LE(result.final_cut, result.initial_cut);
}

TEST(RefinePartition, GeometricStartHasSmallerBoundaryThanRandom) {
  // The claim that coordinates "reduce the work" of KL refinement: the
  // geometric partition's boundary (the candidate set) is far smaller.
  const CsrGraph g = BuildCsrGraph(900, GenGrid2d(30, 30));
  HdeOptions options;
  options.subspace_dim = 10;
  options.start_vertex = 0;
  const HdeResult hde = RunParHde(g, options);
  std::vector<int> geo = CoordinateBisection(hde.layout, 4);
  std::vector<int> rnd = CoordinateBisection(RandomLayout(900, 3), 4);
  EXPECT_LT(BoundarySize(g, geo) * 4, BoundarySize(g, rnd));
}

class RefinePartsSweep : public ::testing::TestWithParam<int> {};

TEST_P(RefinePartsSweep, CutMonotoneForAllPartCounts) {
  const int parts = GetParam();
  const CsrGraph g = BuildCsrGraph(256, GenGrid2d(16, 16));
  std::vector<int> labels(256);
  for (vid_t v = 0; v < 256; ++v) {
    labels[static_cast<std::size_t>(v)] = v % parts;  // striped: bad
  }
  const RefinePartitionResult result = RefinePartition(g, labels, parts);
  EXPECT_LE(result.final_cut, result.initial_cut);
  // Labels stay in range.
  for (const int l : labels) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, parts);
  }
}

INSTANTIATE_TEST_SUITE_P(Parts, RefinePartsSweep, ::testing::Values(2, 3, 4, 8));

}  // namespace
}  // namespace parhde
