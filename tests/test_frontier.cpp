#include "bfs/frontier.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace parhde {
namespace {

TEST(Bitmap, StartsCleared) {
  Bitmap bm(100);
  for (vid_t v = 0; v < 100; ++v) EXPECT_FALSE(bm.Get(v));
  EXPECT_EQ(bm.Count(), 0);
}

TEST(Bitmap, SetAndGet) {
  Bitmap bm(200);
  bm.Set(0);
  bm.Set(63);
  bm.Set(64);
  bm.Set(199);
  EXPECT_TRUE(bm.Get(0));
  EXPECT_TRUE(bm.Get(63));
  EXPECT_TRUE(bm.Get(64));
  EXPECT_TRUE(bm.Get(199));
  EXPECT_FALSE(bm.Get(1));
  EXPECT_FALSE(bm.Get(65));
  EXPECT_EQ(bm.Count(), 4);
}

TEST(Bitmap, ResetClearsEverything) {
  Bitmap bm(128);
  for (vid_t v = 0; v < 128; v += 3) bm.Set(v);
  bm.Reset();
  EXPECT_EQ(bm.Count(), 0);
}

TEST(Bitmap, SetUnsyncedEquivalentForSingleWriter) {
  Bitmap a(100), b(100);
  for (vid_t v = 7; v < 100; v += 7) {
    a.Set(v);
    b.SetUnsynced(v);
  }
  for (vid_t v = 0; v < 100; ++v) EXPECT_EQ(a.Get(v), b.Get(v));
}

TEST(Bitmap, SwapExchangesContents) {
  Bitmap a(64), b(64);
  a.Set(5);
  b.Set(10);
  a.Swap(b);
  EXPECT_TRUE(a.Get(10));
  EXPECT_FALSE(a.Get(5));
  EXPECT_TRUE(b.Get(5));
}

TEST(Bitmap, ConcurrentSetsAllLand) {
  Bitmap bm(10000);
#pragma omp parallel for
  for (vid_t v = 0; v < 10000; ++v) {
    if (v % 2 == 0) bm.Set(v);
  }
  EXPECT_EQ(bm.Count(), 5000);
}

TEST(FrontierQueue, InitWithSeed) {
  FrontierQueue q(100);
  q.InitWith(42);
  EXPECT_EQ(q.Size(), 1);
  EXPECT_EQ(q.Vertices()[0], 42);
  EXPECT_FALSE(q.Empty());
}

TEST(FrontierQueue, FlushAndAdvance) {
  FrontierQueue q(100);
  q.InitWith(0);
  std::vector<vid_t> staged{1, 2, 3};
  q.Flush(staged);
  EXPECT_TRUE(staged.empty());  // consumed
  q.Advance();
  EXPECT_EQ(q.Size(), 3);
  std::set<vid_t> contents(q.Vertices().begin(), q.Vertices().end());
  EXPECT_EQ(contents, (std::set<vid_t>{1, 2, 3}));
}

TEST(FrontierQueue, AdvanceWithoutFlushEmpties) {
  FrontierQueue q(10);
  q.InitWith(5);
  q.Advance();
  EXPECT_TRUE(q.Empty());
}

TEST(FrontierQueue, ConcurrentFlushesAllArrive) {
  FrontierQueue q(100000);
  q.InitWith(0);
#pragma omp parallel
  {
    std::vector<vid_t> staged;
#pragma omp for
    for (vid_t v = 0; v < 50000; ++v) {
      staged.push_back(v);
      if (staged.size() == 128) q.Flush(staged);
    }
    q.Flush(staged);
  }
  q.Advance();
  EXPECT_EQ(q.Size(), 50000);
  std::vector<vid_t> sorted(q.Vertices().begin(), q.Vertices().end());
  std::sort(sorted.begin(), sorted.end());
  for (vid_t v = 0; v < 50000; ++v) {
    EXPECT_EQ(sorted[static_cast<std::size_t>(v)], v);
  }
}

TEST(FrontierQueue, BitmapRoundTrip) {
  FrontierQueue q(128);
  q.InitWith(0);
  std::vector<vid_t> staged{3, 64, 100};
  q.Flush(staged);
  q.Advance();

  Bitmap bm(128);
  q.StoreToBitmap(bm);
  EXPECT_EQ(bm.Count(), 3);
  EXPECT_TRUE(bm.Get(3));
  EXPECT_TRUE(bm.Get(64));
  EXPECT_TRUE(bm.Get(100));

  FrontierQueue q2(128);
  q2.LoadFromBitmap(bm);
  EXPECT_EQ(q2.Size(), 3);
  // LoadFromBitmap yields ascending order.
  EXPECT_EQ(q2.Vertices()[0], 3);
  EXPECT_EQ(q2.Vertices()[1], 64);
  EXPECT_EQ(q2.Vertices()[2], 100);
}

}  // namespace
}  // namespace parhde
