#include "linalg/gemm.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/parallel.hpp"
#include "util/prng.hpp"

namespace parhde {
namespace {

DenseMatrix RandomMatrix(std::size_t rows, std::size_t cols,
                         std::uint64_t seed) {
  DenseMatrix m(rows, cols);
  Xoshiro256 rng(seed);
  for (std::size_t c = 0; c < cols; ++c) {
    for (std::size_t r = 0; r < rows; ++r) {
      m.At(r, c) = rng.NextDouble() * 2.0 - 1.0;
    }
  }
  return m;
}

TEST(TransposeTimes, SmallByHand) {
  DenseMatrix A(2, 2), B(2, 2);
  A.At(0, 0) = 1;
  A.At(1, 0) = 2;
  A.At(0, 1) = 3;
  A.At(1, 1) = 4;
  B.At(0, 0) = 5;
  B.At(1, 0) = 6;
  B.At(0, 1) = 7;
  B.At(1, 1) = 8;
  const DenseMatrix Z = TransposeTimes(A, B);
  EXPECT_DOUBLE_EQ(Z.At(0, 0), 1 * 5 + 2 * 6);
  EXPECT_DOUBLE_EQ(Z.At(0, 1), 1 * 7 + 2 * 8);
  EXPECT_DOUBLE_EQ(Z.At(1, 0), 3 * 5 + 4 * 6);
  EXPECT_DOUBLE_EQ(Z.At(1, 1), 3 * 7 + 4 * 8);
}

TEST(TransposeTimes, MatchesSerialReference) {
  const DenseMatrix A = RandomMatrix(777, 6, 1);
  const DenseMatrix B = RandomMatrix(777, 4, 2);
  const DenseMatrix Z = TransposeTimes(A, B);
  ASSERT_EQ(Z.Rows(), 6u);
  ASSERT_EQ(Z.Cols(), 4u);
  for (std::size_t a = 0; a < 6; ++a) {
    for (std::size_t b = 0; b < 4; ++b) {
      double expected = 0.0;
      for (std::size_t r = 0; r < 777; ++r) {
        expected += A.At(r, a) * B.At(r, b);
      }
      EXPECT_NEAR(Z.At(a, b), expected, 1e-10);
    }
  }
}

TEST(TransposeTimes, GramMatrixIsSymmetricPsd) {
  const DenseMatrix A = RandomMatrix(300, 5, 3);
  const DenseMatrix Z = TransposeTimes(A, A);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_GE(Z.At(i, i), 0.0);
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_NEAR(Z.At(i, j), Z.At(j, i), 1e-12);
    }
  }
}

TEST(TallTimesSmall, SmallByHand) {
  DenseMatrix A(3, 2), B(2, 1);
  for (std::size_t r = 0; r < 3; ++r) {
    A.At(r, 0) = static_cast<double>(r + 1);
    A.At(r, 1) = 10.0;
  }
  B.At(0, 0) = 2.0;
  B.At(1, 0) = 0.5;
  const DenseMatrix C = TallTimesSmall(A, B);
  ASSERT_EQ(C.Rows(), 3u);
  ASSERT_EQ(C.Cols(), 1u);
  EXPECT_DOUBLE_EQ(C.At(0, 0), 1 * 2 + 10 * 0.5);
  EXPECT_DOUBLE_EQ(C.At(2, 0), 3 * 2 + 10 * 0.5);
}

TEST(TallTimesSmall, IdentityPassthrough) {
  const DenseMatrix A = RandomMatrix(100, 3, 4);
  DenseMatrix I(3, 3);
  for (std::size_t i = 0; i < 3; ++i) I.At(i, i) = 1.0;
  const DenseMatrix C = TallTimesSmall(A, I);
  for (std::size_t c = 0; c < 3; ++c) {
    for (std::size_t r = 0; r < 100; ++r) {
      EXPECT_DOUBLE_EQ(C.At(r, c), A.At(r, c));
    }
  }
}

TEST(TransposeTimesThenTall, AssociativityProperty) {
  // (A'B) consumed by TallTimesSmall equals direct triple product.
  const DenseMatrix A = RandomMatrix(200, 4, 5);
  const DenseMatrix B = RandomMatrix(200, 4, 6);
  const DenseMatrix Z = TransposeTimes(A, B);  // 4x4
  const DenseMatrix C = TallTimesSmall(A, Z);  // 200x4
  for (std::size_t c = 0; c < 4; ++c) {
    for (std::size_t r = 0; r < 200; ++r) {
      double expected = 0.0;
      for (std::size_t k = 0; k < 4; ++k) {
        expected += A.At(r, k) * Z.At(k, c);
      }
      EXPECT_NEAR(C.At(r, c), expected, 1e-10);
    }
  }
}

class GemmThreadSweep : public ::testing::TestWithParam<int> {};

TEST_P(GemmThreadSweep, StableAcrossThreadCounts) {
  ThreadCountGuard guard(GetParam());
  const DenseMatrix A = RandomMatrix(999, 7, 8);
  const DenseMatrix B = RandomMatrix(999, 7, 9);
  const DenseMatrix Z = TransposeTimes(A, B);
  ThreadCountGuard serial(1);
  const DenseMatrix ref = TransposeTimes(A, B);
  for (std::size_t i = 0; i < 7; ++i) {
    for (std::size_t j = 0; j < 7; ++j) {
      EXPECT_NEAR(Z.At(i, j), ref.At(i, j), 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, GemmThreadSweep, ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace parhde
