#include "draw/metrics.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "hde/parhde.hpp"
#include "hde/refine.hpp"

namespace parhde {
namespace {

Layout GridGeometry(vid_t rows, vid_t cols) {
  Layout layout;
  for (vid_t r = 0; r < rows; ++r) {
    for (vid_t c = 0; c < cols; ++c) {
      layout.x.push_back(c);
      layout.y.push_back(r);
    }
  }
  return layout;
}

TEST(NeighborhoodPreservation, PerfectForGridGeometry) {
  // In the true grid embedding, each vertex's nearest deg(v) vertices are
  // exactly its grid neighbors (distance 1 vs sqrt(2) for diagonals).
  const CsrGraph g = BuildCsrGraph(144, GenGrid2d(12, 12));
  const double np = NeighborhoodPreservation(g, GridGeometry(12, 12));
  EXPECT_GT(np, 0.99);
}

TEST(NeighborhoodPreservation, LowForRandomLayout) {
  const CsrGraph g = BuildCsrGraph(400, GenGrid2d(20, 20));
  const double np = NeighborhoodPreservation(g, RandomLayout(400, 5));
  EXPECT_LT(np, 0.2);
}

TEST(NeighborhoodPreservation, HdeBeatsRandom) {
  const CsrGraph g = BuildCsrGraph(400, GenGrid2d(20, 20));
  HdeOptions options;
  options.subspace_dim = 10;
  options.start_vertex = 0;
  const HdeResult hde = RunParHde(g, options);
  EXPECT_GT(NeighborhoodPreservation(g, hde.layout),
            3.0 * NeighborhoodPreservation(g, RandomLayout(400, 5)));
}

TEST(DistanceCorrelation, NearOneForGridGeometry) {
  const CsrGraph g = BuildCsrGraph(225, GenGrid2d(15, 15));
  EXPECT_GT(DistanceCorrelation(g, GridGeometry(15, 15)), 0.9);
}

TEST(DistanceCorrelation, NearZeroForRandomLayout) {
  const CsrGraph g = BuildCsrGraph(400, GenGrid2d(20, 20));
  EXPECT_LT(std::abs(DistanceCorrelation(g, RandomLayout(400, 7))), 0.3);
}

TEST(DistanceCorrelation, HdeHighOnMesh) {
  const CsrGraph g = BuildCsrGraph(400, GenGrid2d(20, 20));
  HdeOptions options;
  options.subspace_dim = 10;
  options.start_vertex = 0;
  const HdeResult hde = RunParHde(g, options);
  EXPECT_GT(DistanceCorrelation(g, hde.layout), 0.8);
}

TEST(QualityMetrics, DeterministicForSeed) {
  const CsrGraph g = BuildCsrGraph(225, GenGrid2d(15, 15));
  const Layout layout = RandomLayout(225, 3);
  QualityOptions options;
  options.seed = 11;
  EXPECT_DOUBLE_EQ(NeighborhoodPreservation(g, layout, options),
                   NeighborhoodPreservation(g, layout, options));
  EXPECT_DOUBLE_EQ(DistanceCorrelation(g, layout, options),
                   DistanceCorrelation(g, layout, options));
}

TEST(QualityMetrics, TinyGraphsDoNotCrash) {
  const CsrGraph g = BuildCsrGraph(2, {{0, 1}});
  Layout layout;
  layout.x = {0.0, 1.0};
  layout.y = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(NeighborhoodPreservation(g, layout), 1.0);
  EXPECT_DOUBLE_EQ(DistanceCorrelation(g, layout), 1.0);
}

}  // namespace
}  // namespace parhde
