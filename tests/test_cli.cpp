#include "util/cli.hpp"

#include <gtest/gtest.h>

#include <array>
#include <stdexcept>

#include "util/status.hpp"

namespace parhde {
namespace {

ArgParser Parse(std::vector<std::string> args) {
  static std::vector<std::string> storage;
  storage = std::move(args);
  storage.insert(storage.begin(), "prog");
  std::vector<char*> argv;
  for (auto& s : storage) argv.push_back(s.data());
  return ArgParser(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgParser, EqualsSyntax) {
  auto args = Parse({"--graph=road", "--s=50"});
  EXPECT_EQ(args.GetString("graph", ""), "road");
  EXPECT_EQ(args.GetInt("s", 0), 50);
}

TEST(ArgParser, SpaceSyntax) {
  auto args = Parse({"--graph", "kron", "--delta", "2.5"});
  EXPECT_EQ(args.GetString("graph", ""), "kron");
  EXPECT_DOUBLE_EQ(args.GetDouble("delta", 0.0), 2.5);
}

TEST(ArgParser, BareFlag) {
  auto args = Parse({"--verbose"});
  EXPECT_TRUE(args.Has("verbose"));
  EXPECT_FALSE(args.Has("quiet"));
}

TEST(ArgParser, DefaultsWhenAbsent) {
  auto args = Parse({});
  EXPECT_EQ(args.GetString("x", "def"), "def");
  EXPECT_EQ(args.GetInt("x", 7), 7);
  EXPECT_DOUBLE_EQ(args.GetDouble("x", 1.5), 1.5);
}

TEST(ArgParser, UnparsableNumberIsAUsageError) {
  auto args = Parse({"--s=abc"});
  try {
    static_cast<void>(args.GetInt("s", 42));
    FAIL() << "expected ParhdeError";
  } catch (const ParhdeError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUsage);
  }
  EXPECT_THROW(static_cast<void>(args.GetDouble("s", 1.5)), ParhdeError);
}

TEST(ArgParser, EmptyNumberValueStillFallsBack) {
  auto args = Parse({"--s"});
  EXPECT_EQ(args.GetInt("s", 42), 42);
}

TEST(ArgParser, PositionalArguments) {
  auto args = Parse({"input.mtx", "--s=10", "output.png"});
  ASSERT_EQ(args.Positional().size(), 2u);
  EXPECT_EQ(args.Positional()[0], "input.mtx");
  EXPECT_EQ(args.Positional()[1], "output.png");
}

TEST(ArgParser, NegativeNumberAsValue) {
  auto args = Parse({"--offset=-5"});
  EXPECT_EQ(args.GetInt("offset", 0), -5);
}

TEST(ArgParser, GetChoiceDefaultsWhenAbsent) {
  auto args = Parse({});
  EXPECT_EQ(args.GetChoice("kernel", {"parbfs", "msbfs"}, "parbfs"), "parbfs");
}

TEST(ArgParser, GetChoiceAcceptsAllowedValue) {
  auto args = Parse({"--kernel=msbfs"});
  EXPECT_EQ(args.GetChoice("kernel", {"parbfs", "msbfs"}, "parbfs"), "msbfs");
}

TEST(ArgParser, GetChoiceRejectsUnknownValue) {
  auto args = Parse({"--kernel=bogus"});
  try {
    static_cast<void>(args.GetChoice("kernel", {"parbfs", "msbfs"}, "parbfs"));
    FAIL() << "expected ParhdeError";
  } catch (const ParhdeError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUsage);
    EXPECT_NE(std::string(e.what()).find("parbfs|msbfs"), std::string::npos);
  }
}

}  // namespace
}  // namespace parhde
