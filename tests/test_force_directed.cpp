#include "hde/force_directed.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "draw/layout.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "hde/parhde.hpp"

namespace parhde {
namespace {

TEST(ForceDirected, ProducesFiniteLayout) {
  const CsrGraph g = BuildCsrGraph(100, GenGrid2d(10, 10));
  const ForceDirectedResult result = FruchtermanReingold(g);
  ASSERT_EQ(result.layout.x.size(), 100u);
  for (std::size_t v = 0; v < 100; ++v) {
    EXPECT_TRUE(std::isfinite(result.layout.x[v]));
    EXPECT_TRUE(std::isfinite(result.layout.y[v]));
  }
  EXPECT_EQ(result.iterations, 100);
  EXPECT_GT(result.interactions, 0);
}

TEST(ForceDirected, DeterministicForSeed) {
  const CsrGraph g = BuildCsrGraph(64, GenRing(64));
  ForceDirectedOptions options;
  options.iterations = 20;
  options.seed = 9;
  const ForceDirectedResult a = FruchtermanReingold(g, options);
  const ForceDirectedResult b = FruchtermanReingold(g, options);
  for (std::size_t v = 0; v < 64; ++v) {
    EXPECT_DOUBLE_EQ(a.layout.x[v], b.layout.x[v]);
  }
}

TEST(ForceDirected, ImprovesEdgeLengthEnergyOverRandom) {
  const CsrGraph g = BuildCsrGraph(225, GenGrid2d(15, 15));
  ForceDirectedOptions options;
  options.iterations = 150;
  const ForceDirectedResult result = FruchtermanReingold(g, options);

  Layout random;
  random.x.resize(225);
  random.y.resize(225);
  for (std::size_t v = 0; v < 225; ++v) {
    random.x[v] = static_cast<double>((v * 48271) % 997);
    random.y[v] = static_cast<double>((v * 16807) % 997);
  }
  EXPECT_LT(NormalizedEdgeLengthEnergy(g, result.layout),
            NormalizedEdgeLengthEnergy(g, random) * 0.5);
}

TEST(ForceDirected, WarmStartFromHdeKeepsQuality) {
  const CsrGraph g = BuildCsrGraph(400, GenGrid2d(20, 20));
  HdeOptions hde;
  hde.subspace_dim = 10;
  hde.start_vertex = 0;
  const Layout init = RunParHde(g, hde).layout;

  ForceDirectedOptions options;
  options.iterations = 30;
  const ForceDirectedResult warm = FruchtermanReingold(g, options, &init);
  const ForceDirectedResult cold = FruchtermanReingold(g, options);
  EXPECT_LE(NormalizedEdgeLengthEnergy(g, warm.layout),
            NormalizedEdgeLengthEnergy(g, cold.layout) * 1.5);
}

TEST(ForceDirected, SeparatesRingNeighbors) {
  // On a small ring, FR should place adjacent vertices closer than
  // antipodal ones.
  const vid_t n = 24;
  const CsrGraph g = BuildCsrGraph(n, GenRing(n));
  ForceDirectedOptions options;
  options.iterations = 300;
  options.seed = 4;
  const ForceDirectedResult result = FruchtermanReingold(g, options);
  auto dist = [&](vid_t a, vid_t b) {
    const double dx = result.layout.x[static_cast<std::size_t>(a)] -
                      result.layout.x[static_cast<std::size_t>(b)];
    const double dy = result.layout.y[static_cast<std::size_t>(a)] -
                      result.layout.y[static_cast<std::size_t>(b)];
    return std::sqrt(dx * dx + dy * dy);
  };
  double adjacent = 0.0, antipodal = 0.0;
  for (vid_t v = 0; v < n; ++v) {
    adjacent += dist(v, (v + 1) % n);
    antipodal += dist(v, (v + n / 2) % n);
  }
  EXPECT_LT(adjacent, antipodal * 0.8);
}

}  // namespace
}  // namespace parhde
