// Minimal JSON value + recursive-descent parser (RFC 8259 subset sufficient
// for the documents this library emits). Throws std::runtime_error on any
// malformed input, so EXPECT_NO_THROW(Parse(...)) is a well-formedness test.
// Shared by the observability tests (test_obs.cpp) and the resilience
// replay tests (test_resilience.cpp) so both validate the same schema with
// the same parser.
#pragma once

#include <cctype>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace parhde::testutil {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool Has(const std::string& key) const { return object.count(key) > 0; }
  const JsonValue& At(const std::string& key) const {
    auto it = object.find(key);
    if (it == object.end()) throw std::runtime_error("missing key: " + key);
    return it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue Parse() {
    JsonValue v = ParseValue();
    SkipWs();
    if (pos_ != text_.size()) Fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void Fail(const std::string& why) {
    throw std::runtime_error("json parse error at " + std::to_string(pos_) +
                             ": " + why);
  }
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  char Peek() {
    if (pos_ >= text_.size()) Fail("unexpected end");
    return text_[pos_];
  }
  void Expect(char c) {
    if (Peek() != c) Fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue ParseValue() {
    SkipWs();
    const char c = Peek();
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      JsonValue v;
      v.kind = JsonValue::Kind::kString;
      v.string = ParseString();
      return v;
    }
    if (c == 't' || c == 'f') return ParseKeyword(c == 't');
    if (c == 'n') {
      Keyword("null");
      return JsonValue{};
    }
    return ParseNumber();
  }

  void Keyword(const std::string& word) {
    if (text_.compare(pos_, word.size(), word) != 0) Fail("bad keyword");
    pos_ += word.size();
  }

  JsonValue ParseKeyword(bool value) {
    Keyword(value ? "true" : "false");
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    v.boolean = value;
    return v;
  }

  JsonValue ParseNumber() {
    const std::size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) Fail("expected number");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = std::stod(text_.substr(start, pos_ - start));
    return v;
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) Fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20) Fail("raw control character");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) Fail("dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) Fail("short \\u escape");
          for (int i = 0; i < 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
              Fail("bad \\u escape");
            }
          }
          // Decoded code points are not needed by these tests; keep the
          // escaped form as a marker.
          out += "\\u" + text_.substr(pos_, 4);
          pos_ += 4;
          break;
        }
        default: Fail("unknown escape");
      }
    }
    return out;
  }

  JsonValue ParseArray() {
    Expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(ParseValue());
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect(']');
      return v;
    }
  }

  JsonValue ParseObject() {
    Expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      SkipWs();
      const std::string key = ParseString();
      SkipWs();
      Expect(':');
      v.object[key] = ParseValue();
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect('}');
      return v;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

inline JsonValue Parse(const std::string& text) {
  return JsonParser(text).Parse();
}

}  // namespace parhde::testutil
