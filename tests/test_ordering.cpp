#include "graph/ordering.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/components.hpp"
#include "graph/gap_stats.hpp"
#include "graph/generators.hpp"

namespace parhde {
namespace {

TEST(RandomPermutation, IsBijection) {
  const Permutation perm = RandomPermutation(1000, 3);
  EXPECT_TRUE(IsPermutation(perm));
}

TEST(RandomPermutation, DeterministicForSeed) {
  EXPECT_EQ(RandomPermutation(100, 5), RandomPermutation(100, 5));
  EXPECT_NE(RandomPermutation(100, 5), RandomPermutation(100, 6));
}

TEST(IdentityPermutation, MapsToSelf) {
  const Permutation perm = IdentityPermutation(10);
  for (vid_t v = 0; v < 10; ++v) EXPECT_EQ(perm[static_cast<std::size_t>(v)], v);
}

TEST(InversePermutation, ComposesToIdentity) {
  const Permutation perm = RandomPermutation(500, 7);
  const Permutation inv = InversePermutation(perm);
  for (std::size_t v = 0; v < perm.size(); ++v) {
    EXPECT_EQ(inv[static_cast<std::size_t>(perm[v])], static_cast<vid_t>(v));
  }
}

TEST(IsPermutation, DetectsDuplicates) {
  EXPECT_FALSE(IsPermutation({0, 1, 1}));
  EXPECT_FALSE(IsPermutation({0, 1, 5}));
  EXPECT_TRUE(IsPermutation({2, 0, 1}));
}

TEST(BfsOrder, SourceGetsRankZero) {
  const CsrGraph g = BuildCsrGraph(10, GenChain(10));
  const Permutation perm = BfsOrder(g, 5);
  EXPECT_EQ(perm[5], 0);
  EXPECT_TRUE(IsPermutation(perm));
}

TEST(BfsOrder, ChainFromEndIsIdentity) {
  const CsrGraph g = BuildCsrGraph(10, GenChain(10));
  const Permutation perm = BfsOrder(g, 0);
  for (vid_t v = 0; v < 10; ++v) EXPECT_EQ(perm[static_cast<std::size_t>(v)], v);
}

TEST(RcmOrder, IsBijectionAndCoversDisconnected) {
  const CsrGraph g = BuildCsrGraph(7, {{0, 1}, {1, 2}, {4, 5}});
  EXPECT_TRUE(IsPermutation(RcmOrder(g)));
}

TEST(RcmOrder, ReducesBandwidthOfShuffledGrid) {
  // Scramble a grid, then check RCM restores locality (mean gap shrinks).
  const CsrGraph grid = BuildCsrGraph(900, GenGrid2d(30, 30));
  const CsrGraph shuffled = ApplyPermutation(grid, RandomPermutation(900, 9));
  const CsrGraph restored = ApplyPermutation(shuffled, RcmOrder(shuffled));

  const double shuffled_gap = ComputeGapSummary(shuffled).mean_gap;
  const double restored_gap = ComputeGapSummary(restored).mean_gap;
  EXPECT_LT(restored_gap, shuffled_gap / 4.0);
}

TEST(DegreeOrder, HubGetsRankZero) {
  const CsrGraph g = BuildCsrGraph(10, GenStar(10));
  const Permutation perm = DegreeOrder(g);
  EXPECT_EQ(perm[0], 0);  // the hub
  EXPECT_TRUE(IsPermutation(perm));
}

TEST(ApplyPermutation, PreservesStructure) {
  const CsrGraph g = BuildCsrGraph(50, GenRing(50));
  const Permutation perm = RandomPermutation(50, 11);
  const CsrGraph pg = ApplyPermutation(g, perm);
  EXPECT_EQ(pg.NumVertices(), g.NumVertices());
  EXPECT_EQ(pg.NumEdges(), g.NumEdges());
  EXPECT_TRUE(pg.Validate());
  // Edge {u, v} maps to {perm[u], perm[v]}.
  for (vid_t v = 0; v < 50; ++v) {
    for (const vid_t u : g.Neighbors(v)) {
      EXPECT_TRUE(pg.HasEdge(perm[static_cast<std::size_t>(v)],
                             perm[static_cast<std::size_t>(u)]));
    }
  }
}

TEST(ApplyPermutation, IdentityIsNoop) {
  const CsrGraph g = BuildCsrGraph(64, GenKronecker(6, 4, 13));
  const CsrGraph pg = ApplyPermutation(g, IdentityPermutation(64));
  EXPECT_EQ(pg.Offsets(), g.Offsets());
  EXPECT_EQ(pg.Adjacency(), g.Adjacency());
}

TEST(ApplyPermutation, PreservesWeights) {
  BuildOptions opts;
  opts.keep_weights = true;
  const CsrGraph g = BuildCsrGraph(3, {{0, 1, 2.0}, {1, 2, 3.0}}, opts);
  const Permutation perm{2, 0, 1};
  const CsrGraph pg = ApplyPermutation(g, perm);
  // Old edge 0-1 (w=2) is now 2-0.
  const auto nbrs = pg.Neighbors(2);
  const auto wts = pg.NeighborWeights(2);
  ASSERT_EQ(nbrs.size(), 1u);
  EXPECT_EQ(nbrs[0], 0);
  EXPECT_DOUBLE_EQ(wts[0], 2.0);
}

class OrderingInvarianceSweep
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OrderingInvarianceSweep, PermutationKeepsConnectivityAndDegrees) {
  const CsrGraph g =
      LargestComponent(BuildCsrGraph(1 << 9, GenKronecker(9, 6, 1))).graph;
  const Permutation perm = RandomPermutation(g.NumVertices(), GetParam());
  const CsrGraph pg = ApplyPermutation(g, perm);
  EXPECT_TRUE(IsConnected(pg));
  // Degree multiset is invariant.
  std::vector<vid_t> before, after;
  for (vid_t v = 0; v < g.NumVertices(); ++v) {
    before.push_back(g.Degree(v));
    after.push_back(pg.Degree(v));
  }
  std::sort(before.begin(), before.end());
  std::sort(after.begin(), after.end());
  EXPECT_EQ(before, after);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrderingInvarianceSweep,
                         ::testing::Values(1u, 2u, 3u, 4u));

}  // namespace
}  // namespace parhde
