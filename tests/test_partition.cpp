#include "hde/partition.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "hde/parhde.hpp"
#include "hde/refine.hpp"

namespace parhde {
namespace {

Layout GridGeometry(vid_t rows, vid_t cols) {
  Layout layout;
  layout.x.resize(static_cast<std::size_t>(rows) * cols);
  layout.y.resize(static_cast<std::size_t>(rows) * cols);
  for (vid_t r = 0; r < rows; ++r) {
    for (vid_t c = 0; c < cols; ++c) {
      layout.x[static_cast<std::size_t>(r * cols + c)] = c;
      layout.y[static_cast<std::size_t>(r * cols + c)] = r;
    }
  }
  return layout;
}

TEST(CoordinateBisection, OnePartIsTrivial) {
  const Layout layout = GridGeometry(4, 4);
  const auto labels = CoordinateBisection(layout, 1);
  for (const int l : labels) EXPECT_EQ(l, 0);
}

TEST(CoordinateBisection, BalancedParts) {
  const Layout layout = GridGeometry(8, 8);
  for (int parts : {2, 4, 8}) {
    const auto labels = CoordinateBisection(layout, parts);
    const auto sizes = PartSizes(labels, parts);
    vid_t lo = sizes[0], hi = sizes[0];
    for (const vid_t s : sizes) {
      lo = std::min(lo, s);
      hi = std::max(hi, s);
    }
    EXPECT_LE(hi - lo, 2) << parts << " parts";
  }
}

TEST(CoordinateBisection, SplitsAlongWiderAxis) {
  // 2 x 16 layout: first split must separate left from right halves.
  const Layout layout = GridGeometry(2, 16);
  const auto labels = CoordinateBisection(layout, 2);
  for (vid_t r = 0; r < 2; ++r) {
    for (vid_t c = 0; c < 16; ++c) {
      const int expected = c < 8 ? labels[0] : labels[15];
      EXPECT_EQ(labels[static_cast<std::size_t>(r * 16 + c)], expected);
    }
  }
  EXPECT_NE(labels[0], labels[15]);
}

TEST(EdgeCut, GridWithGeometricCoordinates) {
  // Perfect geometric bisection of an 8x8 grid cuts exactly 8 edges.
  const CsrGraph g = BuildCsrGraph(64, GenGrid2d(8, 8));
  const Layout layout = GridGeometry(8, 8);
  const auto labels = CoordinateBisection(layout, 2);
  EXPECT_EQ(EdgeCut(g, labels), 8);
}

TEST(EdgeCut, AllSameLabelIsZero) {
  const CsrGraph g = BuildCsrGraph(100, GenGrid2d(10, 10));
  const std::vector<int> labels(100, 0);
  EXPECT_EQ(EdgeCut(g, labels), 0);
}

TEST(EdgeCut, HdeLayoutBeatsRandomPartition) {
  // §4.5.4: geometric partitioning on spectral coordinates gives a lower
  // cut than random assignment.
  const CsrGraph g = BuildCsrGraph(400, GenGrid2d(20, 20));
  HdeOptions options;
  options.subspace_dim = 10;
  options.start_vertex = 0;
  const HdeResult hde = RunParHde(g, options);
  const auto spectral_labels = CoordinateBisection(hde.layout, 4);

  // Random balanced labels via a shuffled layout.
  const Layout random_coords = RandomLayout(400, 23);
  const auto random_labels = CoordinateBisection(random_coords, 4);

  EXPECT_LT(EdgeCut(g, spectral_labels), EdgeCut(g, random_labels) / 2);
}

TEST(SpectralBisection, BalancedAndCutsGridCleanly) {
  // 16x8 grid: the Fiedler vector varies along the long axis, so the
  // median split is the optimal 8-edge cut.
  const CsrGraph g = BuildCsrGraph(128, GenGrid2d(8, 16));
  const auto labels = SpectralBisection(g);
  const auto sizes = PartSizes(labels, 2);
  EXPECT_EQ(sizes[0], 64);
  EXPECT_EQ(sizes[1], 64);
  EXPECT_EQ(EdgeCut(g, labels), 8);
}

TEST(SpectralBisection, CoordinateBisectionComesClose) {
  // §4.5.4 quantified: the fast HDE-coordinate bisection should be within
  // a small factor of the exact spectral cut.
  const CsrGraph g = BuildCsrGraph(600, GenGrid2d(20, 30));
  const auto spectral = SpectralBisection(g);

  HdeOptions options;
  options.subspace_dim = 10;
  options.start_vertex = 0;
  const HdeResult hde = RunParHde(g, options);
  const auto geometric = CoordinateBisection(hde.layout, 2);

  EXPECT_LE(EdgeCut(g, geometric), 3 * EdgeCut(g, spectral));
}

TEST(PartSizes, CountsLabels) {
  const std::vector<int> labels{0, 1, 1, 3, 3, 3};
  const auto sizes = PartSizes(labels, 4);
  EXPECT_EQ(sizes, (std::vector<vid_t>{1, 2, 0, 3}));
}

class BisectionPartsSweep : public ::testing::TestWithParam<int> {};

TEST_P(BisectionPartsSweep, EveryVertexLabeledInRange) {
  const int parts = GetParam();
  const Layout layout = GridGeometry(16, 16);
  const auto labels = CoordinateBisection(layout, parts);
  for (const int l : labels) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, parts);
  }
  // Every part non-empty for these sizes.
  const auto sizes = PartSizes(labels, parts);
  for (const vid_t s : sizes) EXPECT_GT(s, 0);
}

INSTANTIATE_TEST_SUITE_P(Parts, BisectionPartsSweep,
                         ::testing::Values(1, 2, 4, 8, 16));

}  // namespace
}  // namespace parhde
