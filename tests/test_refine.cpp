#include "hde/refine.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "linalg/laplacian_ops.hpp"

namespace parhde {
namespace {

double NormalizedEnergy(const CsrGraph& g, const std::vector<double>& axis) {
  std::vector<double> x = axis;
  double mean = 0.0;
  for (const double v : x) mean += v;
  mean /= static_cast<double>(x.size());
  double norm = 0.0;
  for (auto& v : x) {
    v -= mean;
    norm += v * v;
  }
  norm = std::sqrt(norm);
  if (norm <= 0.0) return 0.0;
  for (auto& v : x) v /= norm;
  return LaplacianQuadraticForm(g, x);
}

TEST(RandomLayout, DeterministicAndBounded) {
  const Layout a = RandomLayout(100, 3);
  const Layout b = RandomLayout(100, 3);
  for (std::size_t v = 0; v < 100; ++v) {
    EXPECT_DOUBLE_EQ(a.x[v], b.x[v]);
    EXPECT_GE(a.x[v], -1.0);
    EXPECT_LE(a.x[v], 1.0);
  }
}

TEST(CentroidRefine, ReducesLayoutEnergy) {
  // Each averaging sweep is a smoothing step: energy must drop sharply
  // from a random start.
  const CsrGraph g = BuildCsrGraph(400, GenGrid2d(20, 20));
  Layout layout = RandomLayout(400, 7);
  const double before = NormalizedEnergy(g, layout.x);
  WeightedCentroidRefine(g, layout, 10);
  const double after = NormalizedEnergy(g, layout.x);
  EXPECT_LT(after, before * 0.5);
}

TEST(CentroidRefine, KeepsAxesDOrthogonalToUnit) {
  const CsrGraph g = BuildCsrGraph(225, GenGrid2d(15, 15));
  Layout layout = RandomLayout(225, 9);
  WeightedCentroidRefine(g, layout, 5);
  // x' D 1 == 0 after the internal reorthogonalization.
  double xd1 = 0.0, yd1 = 0.0;
  for (vid_t v = 0; v < 225; ++v) {
    xd1 += layout.x[static_cast<std::size_t>(v)] * g.WeightedDegree(v);
    yd1 += layout.y[static_cast<std::size_t>(v)] * g.WeightedDegree(v);
  }
  EXPECT_NEAR(xd1, 0.0, 1e-8);
  EXPECT_NEAR(yd1, 0.0, 1e-8);
}

TEST(PowerIteration, ConvergesOnSmallGraph) {
  const CsrGraph g = BuildCsrGraph(100, GenGrid2d(10, 10));
  PowerIterationOptions options;
  options.tolerance = 1e-8;
  const PowerIterationResult result =
      PowerIteration(g, RandomLayout(100, 11), options);
  EXPECT_TRUE(result.converged);
  // Walk-matrix eigenvalues lie in [-1, 1]; the top non-trivial is < 1.
  EXPECT_LT(result.eigenvalue[0], 1.0);
  EXPECT_GT(result.eigenvalue[0], 0.5);  // grid mixes slowly
}

TEST(PowerIteration, RingEigenvalueMatchesTheory) {
  // Ring walk matrix eigenvalues are cos(2*pi*k/n); the top non-trivial is
  // cos(2*pi/n).
  const vid_t n = 64;
  const CsrGraph g = BuildCsrGraph(n, GenRing(n));
  PowerIterationOptions options;
  options.tolerance = 1e-10;
  options.max_iterations = 50000;
  const PowerIterationResult result =
      PowerIteration(g, RandomLayout(n, 13), options);
  ASSERT_TRUE(result.converged);
  const double expected = std::cos(2.0 * M_PI / static_cast<double>(n));
  EXPECT_NEAR(result.eigenvalue[0], expected, 1e-4);
  // The 2nd axis converges to the degenerate partner (same eigenvalue).
  EXPECT_NEAR(result.eigenvalue[1], expected, 1e-3);
}

TEST(PowerIteration, WarmStartConvergesFasterThanRandom) {
  // The §4.5.3 claim, in iteration counts: HDE-initialized power iteration
  // needs far fewer iterations than a cold random start.
  const CsrGraph g = BuildCsrGraph(400, GenGrid2d(20, 20));

  PowerIterationOptions options;
  options.tolerance = 1e-9;
  options.max_iterations = 100000;

  const PowerIterationResult cold =
      PowerIteration(g, RandomLayout(400, 17), options);

  HdeOptions hde_options;
  hde_options.subspace_dim = 10;
  hde_options.start_vertex = 0;
  const HdeResult hde = RunParHde(g, hde_options);
  Layout warm = hde.layout;
  WeightedCentroidRefine(g, warm, 3);
  const PowerIterationResult warm_result = PowerIteration(g, warm, options);

  ASSERT_TRUE(cold.converged);
  ASSERT_TRUE(warm_result.converged);
  EXPECT_LT(warm_result.iterations, cold.iterations);
}

}  // namespace
}  // namespace parhde
