// Seeded randomized sweeps ("fuzz-lite"): arbitrary messy edge lists must
// always yield valid CSR graphs, preprocessing must always yield connected
// graphs, and the cross-kernel distance agreement must hold on whatever
// comes out. TEST_P over seeds keeps each failure reproducible.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "bfs/parallel_bfs.hpp"
#include "bfs/serial_bfs.hpp"
#include "draw/coords_io.hpp"
#include "graph/builder.hpp"
#include "graph/components.hpp"
#include "graph/io.hpp"
#include "hde/parhde.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/delta_stepping.hpp"
#include "util/prng.hpp"

namespace parhde {
namespace {

EdgeList MessyEdges(std::uint64_t seed, vid_t n, std::size_t count) {
  // Self loops, duplicates, both orientations, skewed endpoints.
  Xoshiro256 rng(seed);
  EdgeList edges;
  edges.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    vid_t u = static_cast<vid_t>(rng.NextBounded(n));
    vid_t v = rng.NextDouble() < 0.1
                  ? u  // 10% self loops
                  : static_cast<vid_t>(
                        rng.NextBounded(rng.NextDouble() < 0.5 ? n : n / 4 + 1));
    if (rng.NextDouble() < 0.3 && !edges.empty()) {
      // 30% duplicates of an earlier edge, possibly flipped.
      const Edge& prev = edges[rng.NextBounded(edges.size())];
      u = prev.v;
      v = prev.u;
    }
    edges.push_back({u, v, 0.5 + rng.NextDouble()});
  }
  return edges;
}

class FuzzSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSweep, BuilderAlwaysProducesValidGraphs) {
  const std::uint64_t seed = GetParam();
  for (const bool weighted : {false, true}) {
    BuildOptions opts;
    opts.keep_weights = weighted;
    opts.merge = BuildOptions::MergePolicy::Min;
    const CsrGraph g = BuildCsrGraph(500, MessyEdges(seed, 500, 3000), opts);
    ASSERT_TRUE(g.Validate()) << "seed " << seed << " weighted " << weighted;
  }
}

TEST_P(FuzzSweep, PreprocessingYieldsConnectedGraphs) {
  const std::uint64_t seed = GetParam();
  const CsrGraph g = BuildCsrGraph(400, MessyEdges(seed, 400, 1200));
  const auto extraction = LargestComponent(g);
  EXPECT_TRUE(IsConnected(extraction.graph));
  EXPECT_TRUE(extraction.graph.Validate());
}

TEST_P(FuzzSweep, KernelsAgreeOnMessyGraphs) {
  const std::uint64_t seed = GetParam();
  BuildOptions opts;
  opts.keep_weights = true;
  opts.merge = BuildOptions::MergePolicy::Min;
  const CsrGraph raw = BuildCsrGraph(300, MessyEdges(seed, 300, 1500), opts);
  const CsrGraph g = LargestComponent(raw).graph;
  if (g.NumVertices() < 3) GTEST_SKIP();

  // BFS parallel == serial.
  const auto serial = SerialBfs(g, 0);
  EXPECT_EQ(ParallelBfsDistances(g, 0), serial);

  // Delta-stepping == Dijkstra on the weighted graph.
  const auto exact = Dijkstra(g, 0);
  const auto delta = DeltaStepping(g, 0).dist;
  for (std::size_t v = 0; v < exact.size(); ++v) {
    if (std::isinf(exact[v])) {
      EXPECT_TRUE(std::isinf(delta[v]));
    } else {
      EXPECT_NEAR(delta[v], exact[v], 1e-9);
    }
  }
}

TEST_P(FuzzSweep, ParHdeSurvivesMessyGraphs) {
  const std::uint64_t seed = GetParam();
  const CsrGraph raw = BuildCsrGraph(300, MessyEdges(seed, 300, 900));
  const CsrGraph g = LargestComponent(raw).graph;
  if (g.NumVertices() < 3) GTEST_SKIP();
  HdeOptions options;
  options.subspace_dim = 8;
  options.seed = seed;
  const HdeResult result = RunParHde(g, options);
  for (const double x : result.layout.x) ASSERT_TRUE(std::isfinite(x));
  for (const double y : result.layout.y) ASSERT_TRUE(std::isfinite(y));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99999u,
                                           0xdeadbeefu));

TEST(CoordsIo, RoundTripsExactly) {
  Layout layout;
  layout.x = {0.0, -1.5, 3.14159265358979, 1e-17};
  layout.y = {2.0, 0.25, -2.71828182845905, 1e17};
  std::stringstream stream;
  WriteCoordinates(layout, stream);
  const Layout back = ReadCoordinates(stream);
  ASSERT_EQ(back.x.size(), layout.x.size());
  for (std::size_t v = 0; v < layout.x.size(); ++v) {
    EXPECT_DOUBLE_EQ(back.x[v], layout.x[v]);
    EXPECT_DOUBLE_EQ(back.y[v], layout.y[v]);
  }
}

TEST(CoordsIo, SkipsComments) {
  std::istringstream in("# header\n1 2\n# middle\n3 4\n");
  const Layout layout = ReadCoordinates(in);
  ASSERT_EQ(layout.x.size(), 2u);
  EXPECT_DOUBLE_EQ(layout.x[1], 3.0);
}

TEST(CoordsIo, RejectsMalformedLines) {
  std::istringstream in("1 2\nnot numbers\n");
  EXPECT_THROW(ReadCoordinates(in), std::runtime_error);
}

TEST(ParHde, DisconnectedInputDoesNotCrash) {
  // ParHDE is specified for connected graphs (§4.1 preprocesses to the
  // LCC), but it must degrade gracefully: unreachable vertices get the
  // finite sentinel distance and the layout stays finite.
  const CsrGraph g = BuildCsrGraph(20, {{0, 1}, {1, 2}, {5, 6}, {6, 7}});
  HdeOptions options;
  options.subspace_dim = 3;
  options.start_vertex = 0;
  const HdeResult result = RunParHde(g, options);
  for (const double x : result.layout.x) EXPECT_TRUE(std::isfinite(x));
}

}  // namespace
}  // namespace parhde
