#include "multilevel/coarsen.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/builder.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "multilevel/matching.hpp"

namespace parhde {
namespace {

TEST(Contract, PairBecomesOneVertex) {
  const CsrGraph g = BuildCsrGraph(3, GenChain(3));  // 0-1-2
  const std::vector<vid_t> match{1, 0, 2};           // contract 0-1
  const CoarseLevel level = Contract(g, match);
  EXPECT_EQ(level.graph.NumVertices(), 2);
  EXPECT_EQ(level.graph.NumEdges(), 1);
  EXPECT_EQ(level.fine_to_coarse[0], level.fine_to_coarse[1]);
  EXPECT_NE(level.fine_to_coarse[0], level.fine_to_coarse[2]);
}

TEST(Contract, VertexMassConserved) {
  const CsrGraph g = BuildCsrGraph(400, GenGrid2d(20, 20));
  const CoarseLevel level = Contract(g, HeavyEdgeMatching(g));
  const double total = std::accumulate(level.vertex_weight.begin(),
                                       level.vertex_weight.end(), 0.0);
  EXPECT_DOUBLE_EQ(total, 400.0);
  for (const double w : level.vertex_weight) {
    EXPECT_GE(w, 1.0);
    EXPECT_LE(w, 2.0);
  }
}

TEST(Contract, MassAccumulatesAcrossLevels) {
  const CsrGraph g = BuildCsrGraph(256, GenGrid2d(16, 16));
  const CoarseLevel l1 = Contract(g, HeavyEdgeMatching(g));
  const CoarseLevel l2 =
      Contract(l1.graph, HeavyEdgeMatching(l1.graph), l1.vertex_weight);
  const double total = std::accumulate(l2.vertex_weight.begin(),
                                       l2.vertex_weight.end(), 0.0);
  EXPECT_DOUBLE_EQ(total, 256.0);
}

TEST(Contract, EdgeWeightConserved) {
  // Every fine edge either collapses (pair-internal) or contributes its
  // weight to exactly one coarse edge; total coarse weight = fine edges
  // minus internal ones.
  const CsrGraph g = BuildCsrGraph(100, GenGrid2d(10, 10));
  const auto match = HeavyEdgeMatching(g);
  const CoarseLevel level = Contract(g, match);

  eid_t internal = 0;
  for (vid_t v = 0; v < g.NumVertices(); ++v) {
    if (match[static_cast<std::size_t>(v)] > v) ++internal;
  }
  double coarse_weight = 0.0;
  for (const weight_t w : level.graph.Weights()) coarse_weight += w;
  coarse_weight /= 2.0;  // both arc directions stored
  EXPECT_DOUBLE_EQ(coarse_weight,
                   static_cast<double>(g.NumEdges() - internal));
}

TEST(Contract, PreservesConnectivity) {
  const CsrGraph g =
      LargestComponent(BuildCsrGraph(1 << 10, GenKronecker(10, 6, 5))).graph;
  const CoarseLevel level = Contract(g, HeavyEdgeMatching(g));
  EXPECT_TRUE(IsConnected(level.graph));
  EXPECT_TRUE(level.graph.Validate());
}

TEST(Contract, IdentityMatchingKeepsStructure) {
  const CsrGraph g = BuildCsrGraph(50, GenRing(50));
  std::vector<vid_t> identity(50);
  std::iota(identity.begin(), identity.end(), 0);
  const CoarseLevel level = Contract(g, identity);
  EXPECT_EQ(level.graph.NumVertices(), 50);
  EXPECT_EQ(level.graph.NumEdges(), 50);
}

TEST(Contract, ShrinksRealGraphsSubstantially) {
  const CsrGraph g = BuildCsrGraph(900, GenGrid2d(30, 30));
  const CoarseLevel level = Contract(g, HeavyEdgeMatching(g));
  EXPECT_LT(level.graph.NumVertices(), 600);  // near-perfect matching -> ~450
}

}  // namespace
}  // namespace parhde
