// util::RunContext tests: install/restore nesting, OpenMP-team
// propagation, counter isolation between concurrent contexts, sibling
// deadline independence, merge-on-completion semantics, and the
// deprecated ResetCounters() shim. Suites are named RunContext* so the
// TSan CI job's filter picks them up — the concurrent cases here are the
// acceptance test for truly concurrent layouts.
#include "util/run_context.hpp"

#include <gtest/gtest.h>
#include <omp.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "hde/parhde.hpp"
#include "obs/counters.hpp"
#include "resilience/deadline.hpp"
#include "util/status.hpp"

namespace parhde::util {
namespace {

TEST(RunContextTest, CurrentDefaultsToGlobal) {
  EXPECT_EQ(CurrentRunContext(), &GlobalRunContext());
}

TEST(RunContextTest, ScopedInstallNestsAndRestores) {
  RunContext outer;
  RunContext inner;
  {
    ScopedRunContext outer_scope(outer);
    EXPECT_EQ(CurrentRunContext(), &outer);
    {
      ScopedRunContext inner_scope(inner);
      EXPECT_EQ(CurrentRunContext(), &inner);
    }
    EXPECT_EQ(CurrentRunContext(), &outer);
  }
  EXPECT_EQ(CurrentRunContext(), &GlobalRunContext());
}

TEST(RunContextTest, InstallIsThreadLocal) {
  RunContext ctx;
  ScopedRunContext scope(ctx);
  // A freshly spawned thread has no installed context: it must see the
  // global one, not this thread's.
  RunContext* seen = nullptr;
  std::thread t([&] { seen = CurrentRunContext(); });
  t.join();
  EXPECT_EQ(seen, &GlobalRunContext());
  EXPECT_EQ(CurrentRunContext(), &ctx);
}

TEST(RunContextTest, OmpTeamPropagationBindsEveryWorker) {
  RunContext ctx;
  ScopedRunContext scope(ctx);
  // The canonical region-entry pattern from run_context.hpp: capture on
  // the master, re-install on every team thread.
  RunContext* const run_ctx = CurrentRunContext();
  std::atomic<int> bound{0};
  std::atomic<int> team{0};
#pragma omp parallel
  {
    ScopedRunContext run_scope(*run_ctx);
#pragma omp single
    team.store(omp_get_num_threads());
    if (CurrentRunContext() == &ctx) bound.fetch_add(1);
    obs::CounterAdd(obs::Counter::kBfsSearches, 1);
  }
  EXPECT_EQ(bound.load(), team.load());
  // Every team thread's flush landed in ctx, none in the global store.
  EXPECT_EQ(ctx.counters().Value(obs::Counter::kBfsSearches), team.load());
}

TEST(RunContextTest, CounterWritesRouteToInstalledContext) {
  const std::int64_t global_before =
      GlobalRunContext().counters().Value(obs::Counter::kSsspRelaxations);
  RunContext ctx;
  {
    ScopedRunContext scope(ctx);
    obs::CounterAdd(obs::Counter::kSsspRelaxations, 7);
    EXPECT_EQ(obs::CounterValue(obs::Counter::kSsspRelaxations), 7);
  }
  EXPECT_EQ(ctx.counters().Value(obs::Counter::kSsspRelaxations), 7);
  EXPECT_EQ(GlobalRunContext().counters().Value(obs::Counter::kSsspRelaxations),
            global_before);
}

TEST(RunContextTest, ThisThreadOrdinalIsUniquePerThread) {
  constexpr int kThreads = 8;
  std::vector<int> ordinals(kThreads, -1);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] { ordinals[t] = ThisThreadOrdinal(); });
  }
  for (auto& t : threads) t.join();
  std::set<int> unique(ordinals.begin(), ordinals.end());
  EXPECT_EQ(unique.size(), static_cast<std::size_t>(kThreads));
  // Stable within a thread.
  EXPECT_EQ(ThisThreadOrdinal(), ThisThreadOrdinal());
}

// Two threads, each with its own context, running REAL layouts
// concurrently: counters must land in the owning context with the same
// totals a serial run produces. This is the acceptance test for evicting
// the process-global registries.
TEST(RunContextConcurrencyTest, ConcurrentLayoutsKeepDisjointCounters) {
  const CsrGraph small = BuildCsrGraph(400, GenGrid2d(20, 20));
  const CsrGraph big = BuildCsrGraph(2500, GenGrid2d(50, 50));
  HdeOptions options;
  options.subspace_dim = 6;
  options.start_vertex = 0;

  // Serial reference totals, each measured in a fresh context.
  auto reference = [&](const CsrGraph& g) {
    RunContext ctx;
    ScopedRunContext scope(ctx);
    RunParHde(g, options);
    return ctx.counters().Value(obs::Counter::kBfsFrontierVertices);
  };
  const std::int64_t small_expected = reference(small);
  const std::int64_t big_expected = reference(big);
  ASSERT_GT(small_expected, 0);
  ASSERT_GT(big_expected, small_expected);

  const std::int64_t global_before =
      GlobalRunContext().counters().Value(obs::Counter::kBfsFrontierVertices);

  RunContext small_ctx;
  RunContext big_ctx;
  std::thread small_thread([&] {
    ScopedRunContext scope(small_ctx);
    RunParHde(small, options);
  });
  std::thread big_thread([&] {
    ScopedRunContext scope(big_ctx);
    RunParHde(big, options);
  });
  small_thread.join();
  big_thread.join();

  // Disjoint and exact: neither run bled a single frontier vertex into
  // the sibling or the global store.
  EXPECT_EQ(small_ctx.counters().Value(obs::Counter::kBfsFrontierVertices),
            small_expected);
  EXPECT_EQ(big_ctx.counters().Value(obs::Counter::kBfsFrontierVertices),
            big_expected);
  EXPECT_EQ(
      GlobalRunContext().counters().Value(obs::Counter::kBfsFrontierVertices),
      global_before);
}

// One context arms a hopeless deadline while a sibling context runs a
// full layout: the sibling must complete, and the expiry must be
// recorded only in the context that owned it.
TEST(RunContextConcurrencyTest, DeadlineExpiryDoesNotCancelSibling) {
  const CsrGraph g = BuildCsrGraph(2500, GenGrid2d(50, 50));
  HdeOptions options;
  options.subspace_dim = 6;
  options.start_vertex = 0;

  RunContext doomed_ctx;
  RunContext healthy_ctx;
  std::atomic<bool> doomed_expired{false};
  std::atomic<bool> healthy_completed{false};

  std::thread doomed([&] {
    ScopedRunContext scope(doomed_ctx);
    try {
      resilience::DeadlineGuard guard("test.doomed", 1e-9);
      RunParHde(g, options);
    } catch (const ParhdeError& e) {
      doomed_expired.store(e.code() == ErrorCode::kDeadlineExceeded);
    }
  });
  std::thread healthy([&] {
    ScopedRunContext scope(healthy_ctx);
    const HdeResult result = RunParHde(g, options);
    healthy_completed.store(result.layout.x.size() == 2500u);
  });
  doomed.join();
  healthy.join();

  EXPECT_TRUE(doomed_expired.load());
  EXPECT_TRUE(healthy_completed.load());
  EXPECT_GE(doomed_ctx.counters().Value(obs::Counter::kDeadlineExpirations),
            1);
  EXPECT_EQ(healthy_ctx.counters().Value(obs::Counter::kDeadlineExpirations),
            0);
  // The sibling's token was never armed, let alone expired.
  EXPECT_FALSE(healthy_ctx.deadline().Armed());
}

TEST(RunContextTest, DeadlineTokenIsPerContext) {
  RunContext a;
  RunContext b;
  {
    ScopedRunContext scope(a);
    resilience::DeadlineGuard guard("test.a", 1e-9);
    // a's token expires essentially immediately...
    EXPECT_TRUE(resilience::DeadlinePoll());
    {
      // ...but polling under b sees b's (unarmed) token.
      ScopedRunContext inner(b);
      EXPECT_FALSE(resilience::DeadlinePoll());
    }
    EXPECT_TRUE(resilience::DeadlinePoll());
  }
  EXPECT_FALSE(b.deadline().Armed());
}

TEST(RunContextTest, MergeIntoAccumulatesCountersSeriesAndRecovery) {
  RunContext src;
  RunContext dst;
  {
    ScopedRunContext scope(src);
    obs::CounterAdd(obs::Counter::kServiceRequests, 3);
    obs::SeriesAppend(obs::Series::kBfsFrontierSizes, 11);
    obs::SeriesAppend(obs::Series::kBfsFrontierSizes, 22);
    resilience::RecordRecoveryAttempt(
        {"BFS", "msbfs", "numerical", 0.5, true});
  }
  dst.counters().Add(obs::Counter::kServiceRequests, 2);

  src.MergeInto(dst);
  EXPECT_EQ(dst.counters().Value(obs::Counter::kServiceRequests), 5);
  const auto series = dst.counters().Values(obs::Series::kBfsFrontierSizes);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0], 11);
  EXPECT_EQ(series[1], 22);
  ASSERT_EQ(dst.recovery().Snapshot().size(), 1u);
  EXPECT_EQ(dst.recovery().Snapshot()[0].phase, "BFS");
  // Merge reads, never drains: the source still holds its own totals.
  EXPECT_EQ(src.counters().Value(obs::Counter::kServiceRequests), 3);
}

TEST(RunContextTest, ResetRunStateClearsEverything) {
  RunContext ctx;
  {
    ScopedRunContext scope(ctx);
    obs::CounterAdd(obs::Counter::kBfsLevels, 9);
    obs::SeriesAppend(obs::Series::kBfsFrontierSizes, 1);
    resilience::RecordRecoveryAttempt({"BFS", "msbfs", "numerical", 0.1,
                                       false});
  }
  ctx.ResetRunState();
  EXPECT_EQ(ctx.counters().Value(obs::Counter::kBfsLevels), 0);
  EXPECT_TRUE(ctx.counters().Values(obs::Series::kBfsFrontierSizes).empty());
  EXPECT_TRUE(ctx.recovery().Snapshot().empty());
}

TEST(RunContextTest, LiveCountTracksConstruction) {
  const std::int64_t before = RunContext::LiveCount();
  {
    RunContext a;
    EXPECT_EQ(RunContext::LiveCount(), before + 1);
    RunContext b;
    EXPECT_EQ(RunContext::LiveCount(), before + 2);
  }
  EXPECT_EQ(RunContext::LiveCount(), before);
}

#if GTEST_HAS_DEATH_TEST
TEST(RunContextDeathTest, ResetCountersShimAbortsWithLiveContext) {
  // The deprecated blanket reset must refuse to run while a second
  // context is live — it can no longer know whose run it would clobber.
  EXPECT_DEATH(
      {
        RunContext extra;
        obs::ResetCounters();
      },
      "ResetCounters");
}
#endif

TEST(RunContextTest, ResetCountersShimStillWorksForSoleGlobal) {
  // With only the global context alive, the legacy tests' between-case
  // reset keeps working.
  obs::CounterAdd(obs::Counter::kBfsLevels, 1);
  obs::ResetCounters();
  EXPECT_EQ(obs::CounterValue(obs::Counter::kBfsLevels), 0);
}

}  // namespace
}  // namespace parhde::util
