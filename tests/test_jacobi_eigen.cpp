#include "linalg/jacobi_eigen.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "util/prng.hpp"

namespace parhde {
namespace {

DenseMatrix RandomSymmetric(std::size_t n, std::uint64_t seed) {
  DenseMatrix A(n, n);
  Xoshiro256 rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = rng.NextDouble() * 2.0 - 1.0;
      A.At(i, j) = v;
      A.At(j, i) = v;
    }
  }
  return A;
}

TEST(JacobiEigen, DiagonalMatrix) {
  DenseMatrix A(3, 3);
  A.At(0, 0) = 3.0;
  A.At(1, 1) = 1.0;
  A.At(2, 2) = 2.0;
  const EigenDecomposition eig = SymmetricEigen(A);
  ASSERT_EQ(eig.values.size(), 3u);
  EXPECT_NEAR(eig.values[0], 1.0, 1e-12);
  EXPECT_NEAR(eig.values[1], 2.0, 1e-12);
  EXPECT_NEAR(eig.values[2], 3.0, 1e-12);
}

TEST(JacobiEigen, KnownTwoByTwo) {
  // [[2,1],[1,2]] has eigenvalues 1 and 3.
  DenseMatrix A(2, 2);
  A.At(0, 0) = 2;
  A.At(1, 0) = 1;
  A.At(0, 1) = 1;
  A.At(1, 1) = 2;
  const EigenDecomposition eig = SymmetricEigen(A);
  EXPECT_NEAR(eig.values[0], 1.0, 1e-12);
  EXPECT_NEAR(eig.values[1], 3.0, 1e-12);
  // Eigenvector of λ=1 is (1,-1)/√2 up to sign.
  EXPECT_NEAR(std::abs(eig.vectors.At(0, 0)), 1.0 / std::sqrt(2.0), 1e-10);
  EXPECT_NEAR(eig.vectors.At(0, 0) + eig.vectors.At(1, 0), 0.0, 1e-10);
}

TEST(JacobiEigen, PathLaplacianSpectrum) {
  // Laplacian of the path P3: eigenvalues 0, 1, 3.
  DenseMatrix L(3, 3);
  L.At(0, 0) = 1;
  L.At(1, 1) = 2;
  L.At(2, 2) = 1;
  L.At(1, 0) = -1;
  L.At(0, 1) = -1;
  L.At(2, 1) = -1;
  L.At(1, 2) = -1;
  const EigenDecomposition eig = SymmetricEigen(L);
  EXPECT_NEAR(eig.values[0], 0.0, 1e-12);
  EXPECT_NEAR(eig.values[1], 1.0, 1e-12);
  EXPECT_NEAR(eig.values[2], 3.0, 1e-12);
}

TEST(JacobiEigen, ReconstructsMatrix) {
  // A == V diag(λ) V' within tolerance.
  const DenseMatrix A = RandomSymmetric(10, 31);
  const EigenDecomposition eig = SymmetricEigen(A);
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t j = 0; j < 10; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < 10; ++k) {
        acc += eig.vectors.At(i, k) * eig.values[k] * eig.vectors.At(j, k);
      }
      EXPECT_NEAR(acc, A.At(i, j), 1e-9);
    }
  }
}

TEST(JacobiEigen, EigenvectorsOrthonormal) {
  const DenseMatrix A = RandomSymmetric(20, 33);
  const EigenDecomposition eig = SymmetricEigen(A);
  for (std::size_t a = 0; a < 20; ++a) {
    for (std::size_t b = a; b < 20; ++b) {
      double dot = 0.0;
      for (std::size_t i = 0; i < 20; ++i) {
        dot += eig.vectors.At(i, a) * eig.vectors.At(i, b);
      }
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-10);
    }
  }
}

TEST(JacobiEigen, SatisfiesEigenEquation) {
  const DenseMatrix A = RandomSymmetric(15, 35);
  const EigenDecomposition eig = SymmetricEigen(A);
  for (std::size_t k = 0; k < 15; ++k) {
    for (std::size_t i = 0; i < 15; ++i) {
      double av = 0.0;
      for (std::size_t j = 0; j < 15; ++j) {
        av += A.At(i, j) * eig.vectors.At(j, k);
      }
      EXPECT_NEAR(av, eig.values[k] * eig.vectors.At(i, k), 1e-9);
    }
  }
}

TEST(JacobiEigen, TraceEqualsEigenvalueSum) {
  const DenseMatrix A = RandomSymmetric(30, 37);
  const EigenDecomposition eig = SymmetricEigen(A);
  double trace = 0.0, sum = 0.0;
  for (std::size_t i = 0; i < 30; ++i) trace += A.At(i, i);
  for (const double v : eig.values) sum += v;
  EXPECT_NEAR(trace, sum, 1e-9);
}

TEST(JacobiEigen, SmallestAndLargestSelectors) {
  DenseMatrix A(4, 4);
  for (std::size_t i = 0; i < 4; ++i) A.At(i, i) = static_cast<double>(i + 1);
  const EigenDecomposition eig = SymmetricEigen(A);

  const DenseMatrix lo = SmallestEigenvectors(eig, 2);
  ASSERT_EQ(lo.Cols(), 2u);
  // λ=1 eigenvector is e0; λ=2 is e1.
  EXPECT_NEAR(std::abs(lo.At(0, 0)), 1.0, 1e-12);
  EXPECT_NEAR(std::abs(lo.At(1, 1)), 1.0, 1e-12);

  const DenseMatrix hi = LargestEigenvectors(eig, 2);
  EXPECT_NEAR(std::abs(hi.At(3, 0)), 1.0, 1e-12);  // λ=4 first
  EXPECT_NEAR(std::abs(hi.At(2, 1)), 1.0, 1e-12);  // λ=3 second
}

TEST(JacobiEigen, OneByOne) {
  DenseMatrix A(1, 1);
  A.At(0, 0) = 42.0;
  const EigenDecomposition eig = SymmetricEigen(A);
  EXPECT_DOUBLE_EQ(eig.values[0], 42.0);
  EXPECT_DOUBLE_EQ(std::abs(eig.vectors.At(0, 0)), 1.0);
}

class JacobiSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(JacobiSizeSweep, ConvergesForAllSizes) {
  const std::size_t n = GetParam();
  const DenseMatrix A = RandomSymmetric(n, 100 + n);
  const EigenDecomposition eig = SymmetricEigen(A);
  EXPECT_LT(eig.sweeps, 64);
  // Eigenvalues ascending.
  EXPECT_TRUE(std::is_sorted(eig.values.begin(), eig.values.end()));
}

INSTANTIATE_TEST_SUITE_P(Sizes, JacobiSizeSweep,
                         ::testing::Values(2u, 5u, 10u, 25u, 50u, 100u));

TEST(JacobiEigen, ReportsConvergence) {
  const DenseMatrix A = RandomSymmetric(12, 7);
  const EigenDecomposition eig = SymmetricEigen(A);
  EXPECT_TRUE(eig.converged);
}

TEST(PowerIterationEigen, MatchesJacobiOnRandomSymmetric) {
  // The fallback must reproduce the full ascending spectrum, since ParHDE
  // reads the smallest eigenpairs and PHDE/PivotMDS the largest.
  for (const std::size_t n : {2u, 5u, 10u}) {
    const DenseMatrix A = RandomSymmetric(n, 300 + n);
    const EigenDecomposition ref = SymmetricEigen(A);
    const EigenDecomposition pow = PowerIterationEigen(A);
    EXPECT_TRUE(pow.converged);
    ASSERT_EQ(pow.values.size(), n);
    EXPECT_TRUE(std::is_sorted(pow.values.begin(), pow.values.end()));
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(pow.values[i], ref.values[i], 1e-6) << "n=" << n
                                                      << " i=" << i;
    }
    // Eigenvectors agree up to sign.
    for (std::size_t c = 0; c < n; ++c) {
      double dot = 0.0;
      for (std::size_t r = 0; r < n; ++r) {
        dot += pow.vectors.At(r, c) * ref.vectors.At(r, c);
      }
      EXPECT_NEAR(std::abs(dot), 1.0, 1e-5) << "n=" << n << " col=" << c;
    }
  }
}

TEST(PowerIterationEigen, DegenerateSpectrumStillFiniteAndSorted) {
  // Repeated eigenvalues (identity block) are the hard case for deflation:
  // vectors within the eigenspace are arbitrary, but values must be right.
  DenseMatrix A(4, 4);
  for (std::size_t i = 0; i < 4; ++i) A.At(i, i) = i < 3 ? 2.0 : 5.0;
  const EigenDecomposition eig = PowerIterationEigen(A);
  EXPECT_TRUE(eig.converged);
  ASSERT_EQ(eig.values.size(), 4u);
  EXPECT_NEAR(eig.values[0], 2.0, 1e-8);
  EXPECT_NEAR(eig.values[2], 2.0, 1e-8);
  EXPECT_NEAR(eig.values[3], 5.0, 1e-8);
}

}  // namespace
}  // namespace parhde
