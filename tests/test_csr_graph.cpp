#include "graph/csr_graph.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace parhde {
namespace {

CsrGraph Triangle() { return BuildCsrGraph(3, {{0, 1}, {1, 2}, {0, 2}}); }

TEST(CsrGraph, EmptyGraph) {
  const CsrGraph g = BuildCsrGraph(0, {});
  EXPECT_EQ(g.NumVertices(), 0);
  EXPECT_EQ(g.NumEdges(), 0);
  EXPECT_TRUE(g.Validate());
}

TEST(CsrGraph, IsolatedVertices) {
  const CsrGraph g = BuildCsrGraph(5, {});
  EXPECT_EQ(g.NumVertices(), 5);
  EXPECT_EQ(g.NumEdges(), 0);
  for (vid_t v = 0; v < 5; ++v) EXPECT_EQ(g.Degree(v), 0);
  EXPECT_TRUE(g.Validate());
}

TEST(CsrGraph, TriangleBasics) {
  const CsrGraph g = Triangle();
  EXPECT_EQ(g.NumVertices(), 3);
  EXPECT_EQ(g.NumEdges(), 3);
  EXPECT_EQ(g.NumArcs(), 6);
  for (vid_t v = 0; v < 3; ++v) {
    EXPECT_EQ(g.Degree(v), 2);
    EXPECT_DOUBLE_EQ(g.WeightedDegree(v), 2.0);
  }
  EXPECT_TRUE(g.Validate());
}

TEST(CsrGraph, NeighborsAreSorted) {
  const CsrGraph g = BuildCsrGraph(5, {{4, 0}, {2, 0}, {0, 3}, {1, 0}});
  const auto nbrs = g.Neighbors(0);
  ASSERT_EQ(nbrs.size(), 4u);
  EXPECT_EQ(nbrs[0], 1);
  EXPECT_EQ(nbrs[1], 2);
  EXPECT_EQ(nbrs[2], 3);
  EXPECT_EQ(nbrs[3], 4);
}

TEST(CsrGraph, HasEdgeBothDirections) {
  const CsrGraph g = Triangle();
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_TRUE(g.HasEdge(2, 0));
  const CsrGraph chain = BuildCsrGraph(3, GenChain(3));
  EXPECT_FALSE(chain.HasEdge(0, 2));
}

TEST(CsrGraph, MaxDegreeOfStar) {
  const CsrGraph g = BuildCsrGraph(10, GenStar(10));
  EXPECT_EQ(g.MaxDegree(), 9);
}

TEST(CsrGraph, WeightedDegreeSumsWeights) {
  BuildOptions opts;
  opts.keep_weights = true;
  const CsrGraph g = BuildCsrGraph(3, {{0, 1, 2.5}, {0, 2, 1.5}}, opts);
  EXPECT_TRUE(g.HasWeights());
  EXPECT_DOUBLE_EQ(g.WeightedDegree(0), 4.0);
  EXPECT_DOUBLE_EQ(g.WeightedDegree(1), 2.5);
  EXPECT_DOUBLE_EQ(g.WeightedDegree(2), 1.5);
  EXPECT_TRUE(g.Validate());
}

TEST(CsrGraph, ToEdgeListRoundTrips) {
  const CsrGraph g = BuildCsrGraph(6, GenRing(6));
  const EdgeList edges = g.ToEdgeList();
  EXPECT_EQ(edges.size(), 6u);
  const CsrGraph g2 = BuildCsrGraph(6, edges);
  EXPECT_EQ(g2.Offsets(), g.Offsets());
  EXPECT_EQ(g2.Adjacency(), g.Adjacency());
}

TEST(CsrGraph, ValidateCatchesAsymmetry) {
  // Hand-build a broken CSR: 0->1 exists but 1->0 does not.
  std::vector<eid_t> offsets{0, 1, 1};
  std::vector<vid_t> adj{1};
  // NumArcs is odd -> invalid, and asymmetric.
  const CsrGraph g(std::move(offsets), std::move(adj));
  EXPECT_FALSE(g.Validate());
}

TEST(CsrGraph, ValidateCatchesSelfLoop) {
  std::vector<eid_t> offsets{0, 2, 3, 4};
  std::vector<vid_t> adj{0, 1, 0, 0};  // 0->0 self loop plus 0-1 edge, junk
  const CsrGraph g(std::move(offsets), std::move(adj));
  EXPECT_FALSE(g.Validate());
}

class GeneratorValidateSweep
    : public ::testing::TestWithParam<std::pair<const char*, EdgeList>> {};

TEST_P(GeneratorValidateSweep, BuilderOutputAlwaysValid) {
  const auto& [name, edges] = GetParam();
  vid_t n = 0;
  for (const Edge& e : edges) n = std::max({n, e.u, e.v});
  const CsrGraph g = BuildCsrGraph(n + 1, edges);
  EXPECT_TRUE(g.Validate()) << name;
}

INSTANTIATE_TEST_SUITE_P(
    Families, GeneratorValidateSweep,
    ::testing::Values(std::make_pair("chain", GenChain(50)),
                      std::make_pair("ring", GenRing(64)),
                      std::make_pair("star", GenStar(40)),
                      std::make_pair("complete", GenComplete(12)),
                      std::make_pair("tree", GenBinaryTree(6)),
                      std::make_pair("grid", GenGrid2d(8, 9)),
                      std::make_pair("torus", GenGrid2d(6, 6, true)),
                      std::make_pair("grid3d", GenGrid3d(4, 5, 3))));

}  // namespace
}  // namespace parhde
