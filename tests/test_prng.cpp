#include "util/prng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace parhde {
namespace {

TEST(SplitMix64, DeterministicForSeed) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro256, DeterministicForSeed) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Xoshiro256, NextBoundedStaysInRange) {
  Xoshiro256 rng(123);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(Xoshiro256, NextBoundedOneAlwaysZero) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(Xoshiro256, NextDoubleInUnitInterval) {
  Xoshiro256 rng(99);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Xoshiro256, BoundedValuesCoverRange) {
  // Over many draws from [0, 8) every value should appear.
  Xoshiro256 rng(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Xoshiro256, SplitProducesIndependentStream) {
  Xoshiro256 a(11);
  Xoshiro256 b = a.Split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LE(same, 1);
}

TEST(Xoshiro256, WorksWithStdShuffle) {
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  const auto original = v;
  Xoshiro256 rng(3);
  std::shuffle(v.begin(), v.end(), rng);
  EXPECT_NE(v, original);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Xoshiro256, MeanOfUniformDrawIsCentered) {
  Xoshiro256 rng(2024);
  double total = 0.0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) total += rng.NextDouble();
  EXPECT_NEAR(total / kDraws, 0.5, 0.01);
}

}  // namespace
}  // namespace parhde
