#include "sssp/delta_stepping.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "bfs/serial_bfs.hpp"
#include "graph/builder.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "sssp/dijkstra.hpp"
#include "util/parallel.hpp"

namespace parhde {
namespace {

CsrGraph WeightedGraph(vid_t n, EdgeList edges, std::uint64_t seed) {
  AssignRandomWeights(edges, 0.5, 10.0, seed);
  BuildOptions opts;
  opts.keep_weights = true;
  opts.merge = BuildOptions::MergePolicy::Min;
  return BuildCsrGraph(n, std::move(edges), opts);
}

void ExpectMatchesDijkstra(const CsrGraph& g, vid_t source,
                           const DeltaSteppingOptions& options = {}) {
  const auto expected = Dijkstra(g, source);
  const SsspResult result = DeltaStepping(g, source, options);
  ASSERT_EQ(result.dist.size(), expected.size());
  for (std::size_t v = 0; v < expected.size(); ++v) {
    if (std::isinf(expected[v])) {
      EXPECT_TRUE(std::isinf(result.dist[v])) << "vertex " << v;
    } else {
      EXPECT_NEAR(result.dist[v], expected[v], 1e-9) << "vertex " << v;
    }
  }
}

TEST(Dijkstra, WeightedChain) {
  BuildOptions opts;
  opts.keep_weights = true;
  const CsrGraph g =
      BuildCsrGraph(4, {{0, 1, 2.0}, {1, 2, 3.0}, {2, 3, 1.5}}, opts);
  const auto dist = Dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(dist[0], 0.0);
  EXPECT_DOUBLE_EQ(dist[1], 2.0);
  EXPECT_DOUBLE_EQ(dist[2], 5.0);
  EXPECT_DOUBLE_EQ(dist[3], 6.5);
}

TEST(Dijkstra, TakesShorterOfTwoPaths) {
  BuildOptions opts;
  opts.keep_weights = true;
  // 0-1-2 costs 2; direct 0-2 costs 5.
  const CsrGraph g =
      BuildCsrGraph(3, {{0, 1, 1.0}, {1, 2, 1.0}, {0, 2, 5.0}}, opts);
  EXPECT_DOUBLE_EQ(Dijkstra(g, 0)[2], 2.0);
}

TEST(Dijkstra, UnweightedEqualsBfs) {
  const CsrGraph g =
      LargestComponent(BuildCsrGraph(1 << 9, GenKronecker(9, 5, 1))).graph;
  const auto bfs = SerialBfs(g, 0);
  const auto dij = Dijkstra(g, 0);
  for (std::size_t v = 0; v < bfs.size(); ++v) {
    if (bfs[v] == kInfDist) {
      EXPECT_TRUE(std::isinf(dij[v]));
    } else {
      EXPECT_DOUBLE_EQ(dij[v], static_cast<double>(bfs[v]));
    }
  }
}

TEST(DeltaStepping, WeightedGridMatchesDijkstra) {
  const CsrGraph g = WeightedGraph(225, GenGrid2d(15, 15), 4);
  ExpectMatchesDijkstra(g, 0);
}

TEST(DeltaStepping, WeightedKroneckerMatchesDijkstra) {
  EdgeList edges = GenKronecker(10, 6, 8);
  AssignRandomWeights(edges, 0.5, 10.0, 3);
  BuildOptions opts;
  opts.keep_weights = true;
  opts.merge = BuildOptions::MergePolicy::Min;
  const CsrGraph g =
      LargestComponent(BuildCsrGraph(1 << 10, edges, opts)).graph;
  ExpectMatchesDijkstra(g, 0);
  ExpectMatchesDijkstra(g, g.NumVertices() - 1);
}

TEST(DeltaStepping, UnweightedMatchesBfs) {
  const CsrGraph g = BuildCsrGraph(400, GenGrid2d(20, 20));
  const auto bfs = SerialBfs(g, 5);
  const SsspResult result = DeltaStepping(g, 5);
  for (std::size_t v = 0; v < bfs.size(); ++v) {
    EXPECT_DOUBLE_EQ(result.dist[v], static_cast<double>(bfs[v]));
  }
}

TEST(DeltaStepping, DisconnectedStaysInfinite) {
  const CsrGraph g = BuildCsrGraph(4, {{0, 1}});
  const SsspResult result = DeltaStepping(g, 0);
  EXPECT_TRUE(std::isinf(result.dist[2]));
  EXPECT_TRUE(std::isinf(result.dist[3]));
}

TEST(DeltaStepping, ReportsDeltaUsed) {
  const CsrGraph g = WeightedGraph(100, GenGrid2d(10, 10), 6);
  DeltaSteppingOptions options;
  options.delta = 2.5;
  const SsspResult result = DeltaStepping(g, 0, options);
  EXPECT_DOUBLE_EQ(result.stats.delta_used, 2.5);
  EXPECT_GT(result.stats.relaxations, 0);
}

class DeltaSweep : public ::testing::TestWithParam<double> {};

TEST_P(DeltaSweep, CorrectForAnyBucketWidth) {
  // Δ-stepping must be exact regardless of Δ; Δ only changes performance
  // (the §4.4 observation that road_usa's slowdown depends on Δ).
  const CsrGraph g = WeightedGraph(400, GenRoad(20, 20, 0.1, 7), 9);
  DeltaSteppingOptions options;
  options.delta = GetParam();
  ExpectMatchesDijkstra(g, 0, options);
}

INSTANTIATE_TEST_SUITE_P(Widths, DeltaSweep,
                         ::testing::Values(0.1, 1.0, 5.0, 50.0));

class SsspThreadSweep : public ::testing::TestWithParam<int> {};

TEST_P(SsspThreadSweep, CorrectAcrossThreadCounts) {
  ThreadCountGuard guard(GetParam());
  const CsrGraph g = WeightedGraph(900, GenGrid2d(30, 30), 12);
  ExpectMatchesDijkstra(g, 450);
}

INSTANTIATE_TEST_SUITE_P(Threads, SsspThreadSweep,
                         ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace parhde
