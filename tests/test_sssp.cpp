#include "sssp/delta_stepping.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include <tuple>

#include "bfs/serial_bfs.hpp"
#include "graph/builder.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "linalg/dense_matrix.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/multi_sssp.hpp"
#include "util/parallel.hpp"

namespace parhde {
namespace {

CsrGraph WeightedGraph(vid_t n, EdgeList edges, std::uint64_t seed) {
  AssignRandomWeights(edges, 0.5, 10.0, seed);
  BuildOptions opts;
  opts.keep_weights = true;
  opts.merge = BuildOptions::MergePolicy::Min;
  return BuildCsrGraph(n, std::move(edges), opts);
}

void ExpectMatchesDijkstra(const CsrGraph& g, vid_t source,
                           const DeltaSteppingOptions& options = {}) {
  const auto expected = Dijkstra(g, source);
  const SsspResult result = DeltaStepping(g, source, options);
  ASSERT_EQ(result.dist.size(), expected.size());
  for (std::size_t v = 0; v < expected.size(); ++v) {
    if (std::isinf(expected[v])) {
      EXPECT_TRUE(std::isinf(result.dist[v])) << "vertex " << v;
    } else {
      EXPECT_NEAR(result.dist[v], expected[v], 1e-9) << "vertex " << v;
    }
  }
}

TEST(Dijkstra, WeightedChain) {
  BuildOptions opts;
  opts.keep_weights = true;
  const CsrGraph g =
      BuildCsrGraph(4, {{0, 1, 2.0}, {1, 2, 3.0}, {2, 3, 1.5}}, opts);
  const auto dist = Dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(dist[0], 0.0);
  EXPECT_DOUBLE_EQ(dist[1], 2.0);
  EXPECT_DOUBLE_EQ(dist[2], 5.0);
  EXPECT_DOUBLE_EQ(dist[3], 6.5);
}

TEST(Dijkstra, TakesShorterOfTwoPaths) {
  BuildOptions opts;
  opts.keep_weights = true;
  // 0-1-2 costs 2; direct 0-2 costs 5.
  const CsrGraph g =
      BuildCsrGraph(3, {{0, 1, 1.0}, {1, 2, 1.0}, {0, 2, 5.0}}, opts);
  EXPECT_DOUBLE_EQ(Dijkstra(g, 0)[2], 2.0);
}

TEST(Dijkstra, UnweightedEqualsBfs) {
  const CsrGraph g =
      LargestComponent(BuildCsrGraph(1 << 9, GenKronecker(9, 5, 1))).graph;
  const auto bfs = SerialBfs(g, 0);
  const auto dij = Dijkstra(g, 0);
  for (std::size_t v = 0; v < bfs.size(); ++v) {
    if (bfs[v] == kInfDist) {
      EXPECT_TRUE(std::isinf(dij[v]));
    } else {
      EXPECT_DOUBLE_EQ(dij[v], static_cast<double>(bfs[v]));
    }
  }
}

TEST(DeltaStepping, WeightedGridMatchesDijkstra) {
  const CsrGraph g = WeightedGraph(225, GenGrid2d(15, 15), 4);
  ExpectMatchesDijkstra(g, 0);
}

TEST(DeltaStepping, WeightedKroneckerMatchesDijkstra) {
  EdgeList edges = GenKronecker(10, 6, 8);
  AssignRandomWeights(edges, 0.5, 10.0, 3);
  BuildOptions opts;
  opts.keep_weights = true;
  opts.merge = BuildOptions::MergePolicy::Min;
  const CsrGraph g =
      LargestComponent(BuildCsrGraph(1 << 10, edges, opts)).graph;
  ExpectMatchesDijkstra(g, 0);
  ExpectMatchesDijkstra(g, g.NumVertices() - 1);
}

TEST(DeltaStepping, UnweightedMatchesBfs) {
  const CsrGraph g = BuildCsrGraph(400, GenGrid2d(20, 20));
  const auto bfs = SerialBfs(g, 5);
  const SsspResult result = DeltaStepping(g, 5);
  for (std::size_t v = 0; v < bfs.size(); ++v) {
    EXPECT_DOUBLE_EQ(result.dist[v], static_cast<double>(bfs[v]));
  }
}

TEST(DeltaStepping, DisconnectedStaysInfinite) {
  const CsrGraph g = BuildCsrGraph(4, {{0, 1}});
  const SsspResult result = DeltaStepping(g, 0);
  EXPECT_TRUE(std::isinf(result.dist[2]));
  EXPECT_TRUE(std::isinf(result.dist[3]));
}

TEST(DeltaStepping, ReportsDeltaUsed) {
  const CsrGraph g = WeightedGraph(100, GenGrid2d(10, 10), 6);
  DeltaSteppingOptions options;
  options.delta = 2.5;
  const SsspResult result = DeltaStepping(g, 0, options);
  EXPECT_DOUBLE_EQ(result.stats.delta_used, 2.5);
  EXPECT_GT(result.stats.relaxations, 0);
}

class DeltaSweep : public ::testing::TestWithParam<double> {};

TEST_P(DeltaSweep, CorrectForAnyBucketWidth) {
  // Δ-stepping must be exact regardless of Δ; Δ only changes performance
  // (the §4.4 observation that road_usa's slowdown depends on Δ).
  const CsrGraph g = WeightedGraph(400, GenRoad(20, 20, 0.1, 7), 9);
  DeltaSteppingOptions options;
  options.delta = GetParam();
  ExpectMatchesDijkstra(g, 0, options);
}

INSTANTIATE_TEST_SUITE_P(Widths, DeltaSweep,
                         ::testing::Values(0.1, 1.0, 5.0, 50.0));

class SsspThreadSweep : public ::testing::TestWithParam<int> {};

TEST_P(SsspThreadSweep, CorrectAcrossThreadCounts) {
  ThreadCountGuard guard(GetParam());
  const CsrGraph g = WeightedGraph(900, GenGrid2d(30, 30), 12);
  ExpectMatchesDijkstra(g, 450);
}

INSTANTIATE_TEST_SUITE_P(Threads, SsspThreadSweep,
                         ::testing::Values(1, 2, 4, 8));

// The cyclic window has kSsspWindowSlots open buckets; a graph whose
// distance range spans far more than window * Δ buckets must route entries
// through the per-thread overflow bin and re-bin them on window jumps.
class DeltaThreadSweep
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(DeltaThreadSweep, CorrectForAnyWidthAtAnyThreadCount) {
  ThreadCountGuard guard(std::get<1>(GetParam()));
  const CsrGraph g = WeightedGraph(400, GenRoad(20, 20, 0.1, 7), 9);
  DeltaSteppingOptions options;
  options.delta = std::get<0>(GetParam());
  ExpectMatchesDijkstra(g, 0, options);
}

INSTANTIATE_TEST_SUITE_P(Grid, DeltaThreadSweep,
                         ::testing::Combine(::testing::Values(0.1, 5.0),
                                            ::testing::Values(1, 4, 8)));

TEST(DeltaStepping, LongChainForcesOverflowRebins) {
  // A 300-vertex unit-weight chain with Δ = 0.5 needs ~600 buckets — far
  // beyond the 64-slot window — so entries must pass through the overflow
  // bin and be re-binned when the window jumps. Exactness must survive.
  const CsrGraph g = BuildCsrGraph(300, GenChain(300));
  DeltaSteppingOptions options;
  options.delta = 0.5;
  const auto expected = Dijkstra(g, 0);
  const SsspResult result = DeltaStepping(g, 0, options);
  for (std::size_t v = 0; v < expected.size(); ++v) {
    EXPECT_DOUBLE_EQ(result.dist[v], expected[v]) << "vertex " << v;
  }
  EXPECT_GT(result.stats.overflow_rebins, 0);
}

TEST(DeltaStepping, ExtremeWeightRatioMatchesDijkstra) {
  // Weights spanning six orders of magnitude: the default Δ (average
  // weight) is dominated by the heavy tail, so light edges pile into few
  // buckets while heavy edges land deep in the overflow bin.
  EdgeList edges = GenKronecker(9, 6, 21);
  AssignRandomWeights(edges, 1e-3, 1e3, 17);
  BuildOptions opts;
  opts.keep_weights = true;
  opts.merge = BuildOptions::MergePolicy::Min;
  const CsrGraph g = LargestComponent(BuildCsrGraph(1 << 9, edges, opts)).graph;
  ExpectMatchesDijkstra(g, 0);
  DeltaSteppingOptions tiny;
  tiny.delta = 1e-2;  // deep bucket space: exercises the overflow window
  ExpectMatchesDijkstra(g, 0, tiny);
}

TEST(DeltaStepping, TinyDeltaClampsBucketIndex) {
  // Δ far below every weight makes d/Δ astronomically large; the bucket
  // index must clamp instead of overflowing the size_t cast.
  const CsrGraph g = WeightedGraph(25, GenGrid2d(5, 5), 30);
  DeltaSteppingOptions options;
  options.delta = 1e-12;
  ExpectMatchesDijkstra(g, 0, options);
}

TEST(DeltaStepping, ConcurrentPublishStress) {
  // Regression test for the publish-time data race in the old engine (a
  // thread constructed its local bucket view while another resized the
  // shared bucket vector). The rework merges via prefix-sum offsets into
  // preallocated windows; running a wide weighted graph across many
  // threads under ThreadSanitizer (PARHDE_SANITIZE=thread) must be clean.
  ThreadCountGuard guard(8);
  EdgeList edges = GenKronecker(10, 8, 13);
  AssignRandomWeights(edges, 0.1, 100.0, 29);
  BuildOptions opts;
  opts.keep_weights = true;
  opts.merge = BuildOptions::MergePolicy::Min;
  const CsrGraph g =
      LargestComponent(BuildCsrGraph(1 << 10, edges, opts)).graph;
  for (const double delta : {0.5, 5.0, 0.0}) {
    DeltaSteppingOptions options;
    options.delta = delta;
    ExpectMatchesDijkstra(g, 0, options);
  }
}

TEST(DefaultDelta, IsAverageEdgeWeight) {
  BuildOptions opts;
  opts.keep_weights = true;
  const CsrGraph g =
      BuildCsrGraph(4, {{0, 1, 2.0}, {1, 2, 4.0}, {2, 3, 6.0}}, opts);
  // CSR stores each undirected edge as two arcs with equal weight, so the
  // average over arcs equals the average over edges.
  EXPECT_DOUBLE_EQ(DefaultDelta(g), 4.0);
  EXPECT_DOUBLE_EQ(MaxEdgeWeight(g), 6.0);
}

TEST(DefaultDelta, UnweightedGraphIsUnit) {
  const CsrGraph g = BuildCsrGraph(100, GenGrid2d(10, 10));
  EXPECT_DOUBLE_EQ(DefaultDelta(g), 1.0);
  EXPECT_DOUBLE_EQ(MaxEdgeWeight(g), 1.0);
}

TEST(WeightedSentinel, StrictlyAboveFiniteDistances) {
  // max_finite + max_weight dominates once weights are non-unit...
  EXPECT_DOUBLE_EQ(WeightedUnreachableSentinel(500.0, 10.0, 100), 510.0);
  // ...and the hop sentinel n is kept on unit-weight graphs so historical
  // columns stay bit-identical.
  EXPECT_DOUBLE_EQ(WeightedUnreachableSentinel(7.0, 1.0, 100), 100.0);
  // Zero-weight degenerate graphs still get a sentinel above max_finite.
  EXPECT_GT(WeightedUnreachableSentinel(3.0, 0.0, 2), 3.0);
}

TEST(MultiSssp, ColumnsMatchDijkstraWithSentinel) {
  // Two weighted components: columns must hold exact Dijkstra distances for
  // reachable vertices and a sentinel above all of them otherwise.
  EdgeList edges = GenGrid2d(8, 8);  // component A: vertices 0..63
  edges.push_back({64, 65, 1.0});    // component B: 64-65-66
  edges.push_back({65, 66, 1.0});
  AssignRandomWeights(edges, 2.0, 50.0, 11);
  BuildOptions opts;
  opts.keep_weights = true;
  const CsrGraph g = BuildCsrGraph(67, edges, opts);
  const std::vector<vid_t> sources = {0, 64, 33};

  DenseMatrix B(67, sources.size());
  MultiSsspStats stats;
  ConcurrentSsspToColumns(g, sources, B, 0, DefaultDelta(g), MaxEdgeWeight(g),
                          &stats);

  EXPECT_EQ(stats.searches, 3);
  EXPECT_GT(stats.settled, 0);
  EXPECT_GT(stats.edges_scanned, 0);
  for (std::size_t c = 0; c < sources.size(); ++c) {
    const auto expected = Dijkstra(g, sources[c]);
    double max_finite = 0.0;
    for (const double d : expected) {
      if (std::isfinite(d)) max_finite = std::max(max_finite, d);
    }
    for (std::size_t v = 0; v < expected.size(); ++v) {
      if (std::isfinite(expected[v])) {
        EXPECT_DOUBLE_EQ(B.At(v, c), expected[v]);
      } else {
        EXPECT_GT(B.At(v, c), max_finite) << "sentinel sorted below a "
                                             "reachable vertex in column "
                                          << c;
      }
    }
  }
}

}  // namespace
}  // namespace parhde
