// §4.5.3 demo: ParHDE as a preprocessing step for an iterative eigensolver.
// Draws the plate three ways — raw ParHDE (paper Fig. 1 top), after
// weighted-centroid refinement, and after power iteration to convergence
// (approaching Fig. 1 bottom, the true eigenvector drawing) — and reports
// how many power-iteration steps the warm start saves.
#include <cstdio>

#include "draw/layout.hpp"
#include "draw/png_writer.hpp"
#include "draw/raster.hpp"
#include "graph/builder.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "hde/parhde.hpp"
#include "hde/refine.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace parhde;
  ArgParser args(argc, argv);
  const auto size = static_cast<vid_t>(args.GetInt("size", 80));

  const CsrGraph graph =
      LargestComponent(BuildCsrGraph(PlateNumVertices(size, size),
                                     GenPlateWithHoles(size, size)))
          .graph;

  HdeOptions options;
  options.subspace_dim = static_cast<int>(args.GetInt("s", 20));
  options.start_vertex = 0;
  const HdeResult hde = RunParHde(graph, options);
  WritePngFile(DrawGraph(graph, NormalizeToCanvas(hde.layout, 700, 700), nullptr, nullptr, false, /*antialias=*/true),
               "refine_0_parhde.png");

  Layout refined = hde.layout;
  WeightedCentroidRefine(graph, refined, 5);
  WritePngFile(DrawGraph(graph, NormalizeToCanvas(refined, 700, 700), nullptr, nullptr, false, /*antialias=*/true),
               "refine_1_centroid.png");

  PowerIterationOptions pi;
  pi.tolerance = 1e-9;
  pi.max_iterations = 200000;

  const PowerIterationResult warm = PowerIteration(graph, refined, pi);
  WritePngFile(DrawGraph(graph, NormalizeToCanvas(warm.axes, 700, 700), nullptr, nullptr, false, /*antialias=*/true),
               "refine_2_eigenvectors.png");

  const PowerIterationResult cold =
      PowerIteration(graph, RandomLayout(graph.NumVertices(), 3), pi);

  std::printf("power iteration to tol=%.0e:\n", pi.tolerance);
  std::printf("  cold random start : %d iterations (converged=%d)\n",
              cold.iterations, cold.converged);
  std::printf("  ParHDE+refine warm: %d iterations (converged=%d)\n",
              warm.iterations, warm.converged);
  std::printf("  reduction         : %.1fx\n",
              static_cast<double>(cold.iterations) /
                  static_cast<double>(warm.iterations > 0 ? warm.iterations : 1));
  std::printf("  walk-matrix eigenvalues: %.6f %.6f\n", warm.eigenvalue[0],
              warm.eigenvalue[1]);
  std::printf("wrote refine_0_parhde.png refine_1_centroid.png "
              "refine_2_eigenvectors.png (cf. paper Fig. 1 top vs bottom)\n");
  return 0;
}
