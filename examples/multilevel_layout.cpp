// Multilevel ParHDE demo (§5 future work): coarsens the graph with
// heavy-edge matching, solves the coarsest level with ParHDE, prolongs with
// centroid smoothing, and draws flat-vs-multilevel side outputs.
#include <cstdio>

#include "draw/layout.hpp"
#include "draw/png_writer.hpp"
#include "draw/raster.hpp"
#include "graph/builder.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "hde/parhde.hpp"
#include "multilevel/multilevel_hde.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace parhde;
  ArgParser args(argc, argv);
  const auto size = static_cast<vid_t>(args.GetInt("size", 128));

  const CsrGraph graph =
      LargestComponent(BuildCsrGraph(PlateNumVertices(size, size),
                                     GenPlateWithHoles(size, size)))
          .graph;
  std::printf("graph: n=%d m=%lld\n", graph.NumVertices(),
              static_cast<long long>(graph.NumEdges()));

  // Flat ParHDE.
  HdeOptions flat_options;
  flat_options.subspace_dim = static_cast<int>(args.GetInt("s", 10));
  flat_options.start_vertex = 0;
  WallTimer flat_timer;
  const HdeResult flat = RunParHde(graph, flat_options);
  std::printf("flat ParHDE:      %.3f s\n", flat_timer.Seconds());
  WritePngFile(DrawGraph(graph, NormalizeToCanvas(flat.layout, 700, 700), nullptr, nullptr, false, /*antialias=*/true),
               "multilevel_flat.png");

  // Multilevel.
  MultilevelOptions ml_options;
  ml_options.hde = flat_options;
  ml_options.coarsest_size =
      static_cast<vid_t>(args.GetInt("coarsest", 256));
  ml_options.smoothing_sweeps = static_cast<int>(args.GetInt("sweeps", 3));
  WallTimer ml_timer;
  const MultilevelResult ml = RunMultilevelHde(graph, ml_options);
  std::printf("multilevel ParHDE: %.3f s (%d levels, coarsest n=%d)\n",
              ml_timer.Seconds(), ml.levels, ml.coarsest_vertices);
  for (const auto& name : ml.timings.Names()) {
    std::printf("  %-12s %8.4f s (%5.1f%%)\n", name.c_str(),
                ml.timings.Get(name), ml.timings.Percent(name));
  }
  WritePngFile(DrawGraph(graph, NormalizeToCanvas(ml.layout, 700, 700), nullptr, nullptr, false, /*antialias=*/true),
               "multilevel_ml.png");
  std::printf("wrote multilevel_flat.png and multilevel_ml.png\n");
  return 0;
}
