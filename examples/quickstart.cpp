// Quickstart: the smallest end-to-end ParHDE program.
//
//   quickstart [--graph=grid|kron|road|plate] [--s=10] [--out=layout.png]
//
// Generates a graph (or reads --mtx=<file>), preprocesses it the way the
// paper does (largest connected component), runs ParHDE, prints the phase
// breakdown, and writes a PNG drawing.
#include <cstdio>
#include <string>

#include "draw/layout.hpp"
#include "draw/png_writer.hpp"
#include "draw/raster.hpp"
#include "graph/builder.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "hde/parhde.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace parhde;
  ArgParser args(argc, argv);

  // 1. Obtain a graph.
  CsrGraph raw;
  const std::string mtx = args.GetString("mtx", "");
  const std::string family = args.GetString("graph", "plate");
  if (!mtx.empty()) {
    const MatrixMarketData data = ReadMatrixMarketFile(mtx);
    raw = BuildCsrGraph(data.n, data.edges);
  } else if (family == "grid") {
    raw = BuildCsrGraph(200 * 200, GenGrid2d(200, 200));
  } else if (family == "kron") {
    raw = BuildCsrGraph(1 << 14, GenKronecker(14, 8, 1));
  } else if (family == "road") {
    raw = BuildCsrGraph(150 * 150, GenRoad(150, 150, 0.05, 1));
  } else {
    raw = BuildCsrGraph(PlateNumVertices(96, 96), GenPlateWithHoles(96, 96));
  }

  // 2. Preprocess: ParHDE expects a connected simple graph (Sec 4.1).
  const CsrGraph graph = LargestComponent(raw).graph;
  std::printf("graph: n=%d m=%lld\n", graph.NumVertices(),
              static_cast<long long>(graph.NumEdges()));

  // 3. Run ParHDE.
  HdeOptions options;
  options.subspace_dim = static_cast<int>(args.GetInt("s", 10));
  options.seed = static_cast<std::uint64_t>(args.GetInt("seed", 1));
  const HdeResult result = RunParHde(graph, options);

  std::printf("phases:\n");
  for (const auto& name : result.timings.Names()) {
    std::printf("  %-16s %8.4f s  (%5.1f%%)\n", name.c_str(),
                result.timings.Get(name), result.timings.Percent(name));
  }
  std::printf("kept %d of %d distance vectors; axis eigenvalues %.3g, %.3g\n",
              result.kept_columns, options.subspace_dim,
              result.axis_eigenvalue[0], result.axis_eigenvalue[1]);

  // 4. Draw.
  const std::string out = args.GetString("out", "layout.png");
  const PixelLayout px = NormalizeToCanvas(result.layout, 800, 800);
  WritePngFile(DrawGraph(graph, px), out);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
