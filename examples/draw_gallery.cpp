// Figure 1 / Figure 7 gallery: the barth5-analogue plate drawn with every
// algorithm the paper shows — ParHDE (k-centers), ParHDE with random
// pivots, PHDE, and PivotMDS. All four should capture the global structure
// with four "holes". Writes one PNG per algorithm plus a quality table.
#include <cstdio>
#include <string>

#include "draw/layout.hpp"
#include "draw/png_writer.hpp"
#include "draw/raster.hpp"
#include "graph/builder.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "hde/parhde.hpp"
#include "hde/phde.hpp"
#include "hde/pivot_mds.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace parhde;
  ArgParser args(argc, argv);
  const auto size = static_cast<vid_t>(args.GetInt("size", 96));

  const CsrGraph graph =
      LargestComponent(BuildCsrGraph(PlateNumVertices(size, size),
                                     GenPlateWithHoles(size, size)))
          .graph;
  std::printf("plate-with-holes (barth5 analogue): n=%d m=%lld\n",
              graph.NumVertices(), static_cast<long long>(graph.NumEdges()));

  HdeOptions options;
  options.subspace_dim = static_cast<int>(args.GetInt("s", 30));
  options.start_vertex = 0;

  TextTable table({"Algorithm", "Time (s)", "edge-length energy", "file"});
  auto render = [&](const std::string& name, const HdeResult& result,
                    double seconds) {
    const PixelLayout px = NormalizeToCanvas(result.layout, 700, 700);
    const std::string file = "gallery_" + name + ".png";
    WritePngFile(DrawGraph(graph, px, nullptr, nullptr, false, /*antialias=*/true), file);
    table.AddRow({name, TextTable::Num(seconds, 3),
                  TextTable::Num(NormalizedEdgeLengthEnergy(graph, result.layout), 5),
                  file});
  };

  {
    WallTimer t;
    const HdeResult r = RunParHde(graph, options);
    render("parhde_kcenters", r, t.Seconds());
  }
  {
    HdeOptions random_options = options;
    random_options.pivots = PivotStrategy::Random;
    random_options.seed = 7;
    WallTimer t;
    const HdeResult r = RunParHde(graph, random_options);
    render("parhde_random", r, t.Seconds());
  }
  {
    WallTimer t;
    const HdeResult r = RunPhde(graph, options);
    render("phde", r, t.Seconds());
  }
  {
    WallTimer t;
    const HdeResult r = RunPivotMds(graph, options);
    render("pivotmds", r, t.Seconds());
  }

  std::printf("%s", table.Render().c_str());
  std::printf("all four drawings should show the plate's four holes (cf. "
              "paper Figs. 1 and 7)\n");
  return 0;
}
