// 3-D layout demo (§2.1: p ∈ {2, 3}): ParHDE with num_axes = 3 on a 3-D
// mesh, rendered as three axis-aligned projections plus a simple oblique
// projection — the smoke test that the third spectral axis actually
// carries the depth dimension.
#include <cmath>
#include <cstdio>

#include "draw/layout.hpp"
#include "draw/png_writer.hpp"
#include "draw/raster.hpp"
#include "graph/builder.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "hde/parhde.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace parhde;
  ArgParser args(argc, argv);
  const auto side = static_cast<vid_t>(args.GetInt("side", 14));

  const CsrGraph graph =
      LargestComponent(
          BuildCsrGraph(side * side * side, GenGrid3d(side, side, side)))
          .graph;
  std::printf("3-D grid: n=%d m=%lld\n", graph.NumVertices(),
              static_cast<long long>(graph.NumEdges()));

  HdeOptions options;
  options.subspace_dim = static_cast<int>(args.GetInt("s", 15));
  options.start_vertex = 0;
  options.num_axes = 3;
  const HdeResult result = RunParHde(graph, options);
  std::printf("axis eigenvalues: %.3g %.3g %.3g\n", result.eigenvalues[0],
              result.eigenvalues[1],
              result.eigenvalues.size() > 2 ? result.eigenvalues[2] : 0.0);

  auto project = [&](std::size_t a, std::size_t b, const char* file) {
    Layout view;
    view.x.assign(result.axes.Col(a).begin(), result.axes.Col(a).end());
    view.y.assign(result.axes.Col(b).begin(), result.axes.Col(b).end());
    WritePngFile(DrawGraph(graph, NormalizeToCanvas(view, 600, 600), nullptr, nullptr, false, /*antialias=*/true), file);
  };
  project(0, 1, "layout3d_xy.png");
  project(0, 2, "layout3d_xz.png");
  project(1, 2, "layout3d_yz.png");

  // Oblique projection: x' = x + 0.4·z·cos(30°), y' = y + 0.4·z·sin(30°).
  if (result.axes.Cols() >= 3) {
    Layout oblique;
    const std::size_t n = result.axes.Rows();
    oblique.x.resize(n);
    oblique.y.resize(n);
    const double cx = 0.4 * std::cos(M_PI / 6.0);
    const double cy = 0.4 * std::sin(M_PI / 6.0);
    for (std::size_t v = 0; v < n; ++v) {
      oblique.x[v] = result.axes.At(v, 0) + cx * result.axes.At(v, 2);
      oblique.y[v] = result.axes.At(v, 1) + cy * result.axes.At(v, 2);
    }
    WritePngFile(DrawGraph(graph, NormalizeToCanvas(oblique, 600, 600), nullptr, nullptr, false, /*antialias=*/true),
                 "layout3d_oblique.png");
  }
  std::printf("wrote layout3d_{xy,xz,yz,oblique}.png\n");
  return 0;
}
