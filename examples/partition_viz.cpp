// §4.5.4 partition visualization: ParHDE coordinates feed a geometric
// coordinate-bisection partitioner; the drawing colors intra-partition
// edges by part and inter-partition (cut) edges red, the diagnostic view
// the paper uses to inspect partitioners.
#include <cstdio>
#include <vector>

#include "draw/layout.hpp"
#include "draw/png_writer.hpp"
#include "draw/raster.hpp"
#include "draw/svg_writer.hpp"
#include "graph/builder.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "hde/parhde.hpp"
#include "hde/partition.hpp"
#include "hde/refine.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace parhde;
  ArgParser args(argc, argv);
  const auto size = static_cast<vid_t>(args.GetInt("size", 96));
  const int parts = static_cast<int>(args.GetInt("parts", 4));

  const CsrGraph graph =
      LargestComponent(BuildCsrGraph(PlateNumVertices(size, size),
                                     GenPlateWithHoles(size, size)))
          .graph;

  HdeOptions options;
  options.subspace_dim = static_cast<int>(args.GetInt("s", 20));
  options.start_vertex = 0;
  const HdeResult hde = RunParHde(graph, options);

  const std::vector<int> labels = CoordinateBisection(hde.layout, parts);
  const std::vector<int> random_labels =
      CoordinateBisection(RandomLayout(graph.NumVertices(), 13), parts);

  TextTable table({"Partitioner", "parts", "edge cut", "cut %"});
  const double m = static_cast<double>(graph.NumEdges());
  table.AddRow({"ParHDE coords + bisection", std::to_string(parts),
                TextTable::Int(EdgeCut(graph, labels)),
                TextTable::Num(100.0 * EdgeCut(graph, labels) / m, 1)});
  table.AddRow({"random coords + bisection", std::to_string(parts),
                TextTable::Int(EdgeCut(graph, random_labels)),
                TextTable::Num(100.0 * EdgeCut(graph, random_labels) / m, 1)});
  std::printf("%s", table.Render().c_str());

  // Render: intra-part edges in the part color, cut edges red.
  const PixelLayout px = NormalizeToCanvas(hde.layout, 700, 700);
  std::vector<Rgb> edge_colors;
  edge_colors.reserve(static_cast<std::size_t>(graph.NumEdges()));
  for (vid_t v = 0; v < graph.NumVertices(); ++v) {
    for (const vid_t u : graph.Neighbors(v)) {
      if (u <= v) continue;
      const int lv = labels[static_cast<std::size_t>(v)];
      const int lu = labels[static_cast<std::size_t>(u)];
      edge_colors.push_back(lv == lu ? PartColor(lv) : color::kRed);
    }
  }
  WriteSvgFile(graph, px, "partition.svg", {}, edge_colors);

  // PNG version with the same coloring.
  Canvas canvas(px.width, px.height);
  std::size_t edge_index = 0;
  for (vid_t v = 0; v < graph.NumVertices(); ++v) {
    for (const vid_t u : graph.Neighbors(v)) {
      if (u <= v) continue;
      canvas.DrawLine(px.x[static_cast<std::size_t>(v)],
                      px.y[static_cast<std::size_t>(v)],
                      px.x[static_cast<std::size_t>(u)],
                      px.y[static_cast<std::size_t>(u)],
                      edge_colors[edge_index++]);
    }
  }
  WritePngFile(canvas, "partition.png");
  std::printf("wrote partition.svg and partition.png\n");
  return 0;
}
