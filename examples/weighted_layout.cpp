// §3.3 weighted-graph pipeline: the same mesh laid out twice — once
// ignoring weights (BFS kernel) and once with Δ-stepping SSSP distances on
// a weighted version where edges near the holes are "stiffer" (heavier =
// more similar = drawn shorter). The weighted drawing pulls the stiff
// regions together, showing the weight semantics of §2.1.
#include <cmath>
#include <cstdio>

#include "draw/layout.hpp"
#include "draw/png_writer.hpp"
#include "draw/raster.hpp"
#include "graph/builder.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "hde/parhde.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace parhde;
  ArgParser args(argc, argv);
  const auto size = static_cast<vid_t>(args.GetInt("size", 96));

  // Unweighted plate.
  const CsrGraph plain =
      LargestComponent(BuildCsrGraph(PlateNumVertices(size, size),
                                     GenPlateWithHoles(size, size)))
          .graph;

  // Weighted twin: edges in the left half get weight 5 (high similarity ->
  // drawn short), the rest weight 1. For the SSSP kernel, traversal cost is
  // the *dissimilarity*, so we pass 1/w as the path length.
  CsrGraph weighted;
  {
    EdgeList edges = plain.ToEdgeList();
    // Recover approximate plate coordinates from the generator's row-major
    // ids via the LCC mapping — cheaper: weight by vertex id parity region.
    for (auto& e : edges) {
      const bool left = (e.u % size) < size / 2 && (e.v % size) < size / 2;
      e.w = left ? 0.2 : 1.0;  // SSSP length: left-half edges are short
    }
    BuildOptions opts;
    opts.keep_weights = true;
    weighted = BuildCsrGraph(plain.NumVertices(), edges, opts);
  }

  HdeOptions bfs_options;
  bfs_options.subspace_dim = static_cast<int>(args.GetInt("s", 20));
  bfs_options.start_vertex = 0;

  HdeOptions sssp_options = bfs_options;
  sssp_options.kernel = DistanceKernel::DeltaStepping;

  WallTimer t1;
  const HdeResult plain_result = RunParHde(plain, bfs_options);
  std::printf("unweighted (BFS kernel):      %.3f s\n", t1.Seconds());

  WallTimer t2;
  const HdeResult weighted_result = RunParHde(weighted, sssp_options);
  std::printf("weighted (Delta-stepping):    %.3f s\n", t2.Seconds());

  WritePngFile(
      DrawGraph(plain, NormalizeToCanvas(plain_result.layout, 700, 700), nullptr, nullptr, false, /*antialias=*/true),
      "weighted_plain.png");
  WritePngFile(
      DrawGraph(weighted, NormalizeToCanvas(weighted_result.layout, 700, 700), nullptr, nullptr, false, /*antialias=*/true),
      "weighted_sssp.png");
  std::printf("wrote weighted_plain.png and weighted_sssp.png — the left\n"
              "half (short target lengths) contracts in the weighted one\n");
  return 0;
}
