// Figure 8: the "zoom" feature for multilevel interactive visualization
// (§4.5.2). Lays out the whole plate, then extracts the 10-hop neighborhood
// of a chosen vertex and re-lays it out, writing both drawings.
#include <cstdio>
#include <string>

#include "draw/layout.hpp"
#include "draw/png_writer.hpp"
#include "draw/raster.hpp"
#include "graph/builder.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "hde/parhde.hpp"
#include "hde/zoom.hpp"
#include "util/cli.hpp"
#include "util/prng.hpp"

int main(int argc, char** argv) {
  using namespace parhde;
  ArgParser args(argc, argv);
  const auto size = static_cast<vid_t>(args.GetInt("size", 96));
  const auto hops = static_cast<dist_t>(args.GetInt("hops", 10));

  const CsrGraph graph =
      LargestComponent(BuildCsrGraph(PlateNumVertices(size, size),
                                     GenPlateWithHoles(size, size)))
          .graph;

  HdeOptions options;
  options.subspace_dim = static_cast<int>(args.GetInt("s", 20));
  options.start_vertex = 0;

  // Global layout (the overview the user would click in).
  const HdeResult global = RunParHde(graph, options);
  WritePngFile(DrawGraph(graph, NormalizeToCanvas(global.layout, 700, 700), nullptr, nullptr, false, /*antialias=*/true),
               "zoom_global.png");

  // Pick a vertex (random unless --center given) and zoom.
  vid_t center = static_cast<vid_t>(args.GetInt("center", -1));
  if (center < 0 || center >= graph.NumVertices()) {
    Xoshiro256 rng(static_cast<std::uint64_t>(args.GetInt("seed", 42)));
    center = static_cast<vid_t>(
        rng.NextBounded(static_cast<std::uint64_t>(graph.NumVertices())));
  }
  const ZoomResult zoom = ZoomLayout(graph, center, hops, options);
  std::printf("global: n=%d m=%lld -> %d-hop zoom around v%d: n=%d m=%lld\n",
              graph.NumVertices(), static_cast<long long>(graph.NumEdges()),
              hops, center, zoom.neighborhood.graph.NumVertices(),
              static_cast<long long>(zoom.neighborhood.graph.NumEdges()));

  const PixelLayout px = NormalizeToCanvas(zoom.hde.layout, 700, 700);
  Canvas canvas = DrawGraph(zoom.neighborhood.graph, px, nullptr, nullptr,
                            false, /*antialias=*/true);
  // Mark the zoom center, as a UI would.
  canvas.DrawDot(px.x[static_cast<std::size_t>(zoom.neighborhood.center_new_id)],
                 px.y[static_cast<std::size_t>(zoom.neighborhood.center_new_id)],
                 3, color::kRed);
  WritePngFile(canvas, "zoom_neighborhood.png");
  std::printf("wrote zoom_global.png and zoom_neighborhood.png (cf. paper "
              "Fig. 8)\n");
  return 0;
}
