file(REMOVE_RECURSE
  "CMakeFiles/bench_stress_init.dir/bench_common.cpp.o"
  "CMakeFiles/bench_stress_init.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_stress_init.dir/bench_stress_init.cpp.o"
  "CMakeFiles/bench_stress_init.dir/bench_stress_init.cpp.o.d"
  "bench_stress_init"
  "bench_stress_init.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stress_init.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
