# Empty compiler generated dependencies file for bench_stress_init.
# This may be replaced when dependencies are built.
