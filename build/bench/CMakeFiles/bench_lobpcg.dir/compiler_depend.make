# Empty compiler generated dependencies file for bench_lobpcg.
# This may be replaced when dependencies are built.
