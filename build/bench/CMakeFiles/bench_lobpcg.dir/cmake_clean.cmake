file(REMOVE_RECURSE
  "CMakeFiles/bench_lobpcg.dir/bench_common.cpp.o"
  "CMakeFiles/bench_lobpcg.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_lobpcg.dir/bench_lobpcg.cpp.o"
  "CMakeFiles/bench_lobpcg.dir/bench_lobpcg.cpp.o.d"
  "bench_lobpcg"
  "bench_lobpcg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lobpcg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
