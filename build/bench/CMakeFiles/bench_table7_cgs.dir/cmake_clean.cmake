file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_cgs.dir/bench_common.cpp.o"
  "CMakeFiles/bench_table7_cgs.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_table7_cgs.dir/bench_table7_cgs.cpp.o"
  "CMakeFiles/bench_table7_cgs.dir/bench_table7_cgs.cpp.o.d"
  "bench_table7_cgs"
  "bench_table7_cgs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_cgs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
