# Empty dependencies file for bench_table7_cgs.
# This may be replaced when dependencies are built.
