# Empty dependencies file for bench_fig2_gaps.
# This may be replaced when dependencies are built.
