file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_gaps.dir/bench_common.cpp.o"
  "CMakeFiles/bench_fig2_gaps.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_fig2_gaps.dir/bench_fig2_gaps.cpp.o"
  "CMakeFiles/bench_fig2_gaps.dir/bench_fig2_gaps.cpp.o.d"
  "bench_fig2_gaps"
  "bench_fig2_gaps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_gaps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
