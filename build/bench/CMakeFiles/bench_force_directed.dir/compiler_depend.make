# Empty compiler generated dependencies file for bench_force_directed.
# This may be replaced when dependencies are built.
