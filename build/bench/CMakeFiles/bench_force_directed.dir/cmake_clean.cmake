file(REMOVE_RECURSE
  "CMakeFiles/bench_force_directed.dir/bench_common.cpp.o"
  "CMakeFiles/bench_force_directed.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_force_directed.dir/bench_force_directed.cpp.o"
  "CMakeFiles/bench_force_directed.dir/bench_force_directed.cpp.o.d"
  "bench_force_directed"
  "bench_force_directed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_force_directed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
