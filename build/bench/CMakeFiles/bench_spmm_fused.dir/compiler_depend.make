# Empty compiler generated dependencies file for bench_spmm_fused.
# This may be replaced when dependencies are built.
