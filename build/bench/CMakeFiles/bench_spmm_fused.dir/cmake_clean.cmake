file(REMOVE_RECURSE
  "CMakeFiles/bench_spmm_fused.dir/bench_common.cpp.o"
  "CMakeFiles/bench_spmm_fused.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_spmm_fused.dir/bench_spmm_fused.cpp.o"
  "CMakeFiles/bench_spmm_fused.dir/bench_spmm_fused.cpp.o.d"
  "bench_spmm_fused"
  "bench_spmm_fused.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spmm_fused.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
