file(REMOVE_RECURSE
  "CMakeFiles/bench_refine_precond.dir/bench_common.cpp.o"
  "CMakeFiles/bench_refine_precond.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_refine_precond.dir/bench_refine_precond.cpp.o"
  "CMakeFiles/bench_refine_precond.dir/bench_refine_precond.cpp.o.d"
  "bench_refine_precond"
  "bench_refine_precond.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_refine_precond.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
