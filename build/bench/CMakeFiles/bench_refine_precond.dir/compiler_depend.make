# Empty compiler generated dependencies file for bench_refine_precond.
# This may be replaced when dependencies are built.
