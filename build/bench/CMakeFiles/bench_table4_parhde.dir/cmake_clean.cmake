file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_parhde.dir/bench_common.cpp.o"
  "CMakeFiles/bench_table4_parhde.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_table4_parhde.dir/bench_table4_parhde.cpp.o"
  "CMakeFiles/bench_table4_parhde.dir/bench_table4_parhde.cpp.o.d"
  "bench_table4_parhde"
  "bench_table4_parhde.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_parhde.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
