file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_phde_pmds.dir/bench_common.cpp.o"
  "CMakeFiles/bench_table5_phde_pmds.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_table5_phde_pmds.dir/bench_table5_phde_pmds.cpp.o"
  "CMakeFiles/bench_table5_phde_pmds.dir/bench_table5_phde_pmds.cpp.o.d"
  "bench_table5_phde_pmds"
  "bench_table5_phde_pmds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_phde_pmds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
