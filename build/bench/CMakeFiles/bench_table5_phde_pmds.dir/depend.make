# Empty dependencies file for bench_table5_phde_pmds.
# This may be replaced when dependencies are built.
