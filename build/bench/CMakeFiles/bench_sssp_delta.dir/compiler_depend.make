# Empty compiler generated dependencies file for bench_sssp_delta.
# This may be replaced when dependencies are built.
