file(REMOVE_RECURSE
  "CMakeFiles/bench_sssp_delta.dir/bench_common.cpp.o"
  "CMakeFiles/bench_sssp_delta.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_sssp_delta.dir/bench_sssp_delta.cpp.o"
  "CMakeFiles/bench_sssp_delta.dir/bench_sssp_delta.cpp.o.d"
  "bench_sssp_delta"
  "bench_sssp_delta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sssp_delta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
