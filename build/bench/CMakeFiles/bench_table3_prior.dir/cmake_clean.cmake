file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_prior.dir/bench_common.cpp.o"
  "CMakeFiles/bench_table3_prior.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_table3_prior.dir/bench_table3_prior.cpp.o"
  "CMakeFiles/bench_table3_prior.dir/bench_table3_prior.cpp.o.d"
  "bench_table3_prior"
  "bench_table3_prior.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_prior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
