# Empty dependencies file for bench_table6_pivots.
# This may be replaced when dependencies are built.
