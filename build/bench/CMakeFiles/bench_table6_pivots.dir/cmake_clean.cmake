file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_pivots.dir/bench_common.cpp.o"
  "CMakeFiles/bench_table6_pivots.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_table6_pivots.dir/bench_table6_pivots.cpp.o"
  "CMakeFiles/bench_table6_pivots.dir/bench_table6_pivots.cpp.o.d"
  "bench_table6_pivots"
  "bench_table6_pivots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_pivots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
