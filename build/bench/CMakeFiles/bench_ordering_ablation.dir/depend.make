# Empty dependencies file for bench_ordering_ablation.
# This may be replaced when dependencies are built.
