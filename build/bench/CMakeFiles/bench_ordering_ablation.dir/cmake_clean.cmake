file(REMOVE_RECURSE
  "CMakeFiles/bench_ordering_ablation.dir/bench_common.cpp.o"
  "CMakeFiles/bench_ordering_ablation.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_ordering_ablation.dir/bench_ordering_ablation.cpp.o"
  "CMakeFiles/bench_ordering_ablation.dir/bench_ordering_ablation.cpp.o.d"
  "bench_ordering_ablation"
  "bench_ordering_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ordering_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
