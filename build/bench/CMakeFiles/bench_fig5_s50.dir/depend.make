# Empty dependencies file for bench_fig5_s50.
# This may be replaced when dependencies are built.
