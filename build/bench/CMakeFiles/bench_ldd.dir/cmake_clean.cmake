file(REMOVE_RECURSE
  "CMakeFiles/bench_ldd.dir/bench_common.cpp.o"
  "CMakeFiles/bench_ldd.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_ldd.dir/bench_ldd.cpp.o"
  "CMakeFiles/bench_ldd.dir/bench_ldd.cpp.o.d"
  "bench_ldd"
  "bench_ldd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ldd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
