# Empty dependencies file for zoom_neighborhood.
# This may be replaced when dependencies are built.
