file(REMOVE_RECURSE
  "CMakeFiles/zoom_neighborhood.dir/zoom_neighborhood.cpp.o"
  "CMakeFiles/zoom_neighborhood.dir/zoom_neighborhood.cpp.o.d"
  "zoom_neighborhood"
  "zoom_neighborhood.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zoom_neighborhood.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
