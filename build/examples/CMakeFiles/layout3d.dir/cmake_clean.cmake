file(REMOVE_RECURSE
  "CMakeFiles/layout3d.dir/layout3d.cpp.o"
  "CMakeFiles/layout3d.dir/layout3d.cpp.o.d"
  "layout3d"
  "layout3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layout3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
