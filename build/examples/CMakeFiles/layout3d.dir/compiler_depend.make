# Empty compiler generated dependencies file for layout3d.
# This may be replaced when dependencies are built.
