file(REMOVE_RECURSE
  "CMakeFiles/spectral_refine.dir/spectral_refine.cpp.o"
  "CMakeFiles/spectral_refine.dir/spectral_refine.cpp.o.d"
  "spectral_refine"
  "spectral_refine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spectral_refine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
