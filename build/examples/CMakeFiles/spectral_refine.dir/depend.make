# Empty dependencies file for spectral_refine.
# This may be replaced when dependencies are built.
