# Empty dependencies file for weighted_layout.
# This may be replaced when dependencies are built.
