file(REMOVE_RECURSE
  "CMakeFiles/weighted_layout.dir/weighted_layout.cpp.o"
  "CMakeFiles/weighted_layout.dir/weighted_layout.cpp.o.d"
  "weighted_layout"
  "weighted_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weighted_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
