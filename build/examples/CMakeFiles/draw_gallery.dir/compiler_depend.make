# Empty compiler generated dependencies file for draw_gallery.
# This may be replaced when dependencies are built.
