file(REMOVE_RECURSE
  "CMakeFiles/draw_gallery.dir/draw_gallery.cpp.o"
  "CMakeFiles/draw_gallery.dir/draw_gallery.cpp.o.d"
  "draw_gallery"
  "draw_gallery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/draw_gallery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
