file(REMOVE_RECURSE
  "CMakeFiles/multilevel_layout.dir/multilevel_layout.cpp.o"
  "CMakeFiles/multilevel_layout.dir/multilevel_layout.cpp.o.d"
  "multilevel_layout"
  "multilevel_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multilevel_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
