# Empty dependencies file for multilevel_layout.
# This may be replaced when dependencies are built.
