# Empty dependencies file for partition_viz.
# This may be replaced when dependencies are built.
