file(REMOVE_RECURSE
  "CMakeFiles/partition_viz.dir/partition_viz.cpp.o"
  "CMakeFiles/partition_viz.dir/partition_viz.cpp.o.d"
  "partition_viz"
  "partition_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
