file(REMOVE_RECURSE
  "libparhde.a"
)
