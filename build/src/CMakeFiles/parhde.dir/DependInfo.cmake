
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bfs/frontier.cpp" "src/CMakeFiles/parhde.dir/bfs/frontier.cpp.o" "gcc" "src/CMakeFiles/parhde.dir/bfs/frontier.cpp.o.d"
  "/root/repo/src/bfs/ldd.cpp" "src/CMakeFiles/parhde.dir/bfs/ldd.cpp.o" "gcc" "src/CMakeFiles/parhde.dir/bfs/ldd.cpp.o.d"
  "/root/repo/src/bfs/parallel_bfs.cpp" "src/CMakeFiles/parhde.dir/bfs/parallel_bfs.cpp.o" "gcc" "src/CMakeFiles/parhde.dir/bfs/parallel_bfs.cpp.o.d"
  "/root/repo/src/bfs/serial_bfs.cpp" "src/CMakeFiles/parhde.dir/bfs/serial_bfs.cpp.o" "gcc" "src/CMakeFiles/parhde.dir/bfs/serial_bfs.cpp.o.d"
  "/root/repo/src/draw/coords_io.cpp" "src/CMakeFiles/parhde.dir/draw/coords_io.cpp.o" "gcc" "src/CMakeFiles/parhde.dir/draw/coords_io.cpp.o.d"
  "/root/repo/src/draw/layout.cpp" "src/CMakeFiles/parhde.dir/draw/layout.cpp.o" "gcc" "src/CMakeFiles/parhde.dir/draw/layout.cpp.o.d"
  "/root/repo/src/draw/metrics.cpp" "src/CMakeFiles/parhde.dir/draw/metrics.cpp.o" "gcc" "src/CMakeFiles/parhde.dir/draw/metrics.cpp.o.d"
  "/root/repo/src/draw/png_writer.cpp" "src/CMakeFiles/parhde.dir/draw/png_writer.cpp.o" "gcc" "src/CMakeFiles/parhde.dir/draw/png_writer.cpp.o.d"
  "/root/repo/src/draw/raster.cpp" "src/CMakeFiles/parhde.dir/draw/raster.cpp.o" "gcc" "src/CMakeFiles/parhde.dir/draw/raster.cpp.o.d"
  "/root/repo/src/draw/svg_writer.cpp" "src/CMakeFiles/parhde.dir/draw/svg_writer.cpp.o" "gcc" "src/CMakeFiles/parhde.dir/draw/svg_writer.cpp.o.d"
  "/root/repo/src/graph/builder.cpp" "src/CMakeFiles/parhde.dir/graph/builder.cpp.o" "gcc" "src/CMakeFiles/parhde.dir/graph/builder.cpp.o.d"
  "/root/repo/src/graph/components.cpp" "src/CMakeFiles/parhde.dir/graph/components.cpp.o" "gcc" "src/CMakeFiles/parhde.dir/graph/components.cpp.o.d"
  "/root/repo/src/graph/csr_graph.cpp" "src/CMakeFiles/parhde.dir/graph/csr_graph.cpp.o" "gcc" "src/CMakeFiles/parhde.dir/graph/csr_graph.cpp.o.d"
  "/root/repo/src/graph/gap_stats.cpp" "src/CMakeFiles/parhde.dir/graph/gap_stats.cpp.o" "gcc" "src/CMakeFiles/parhde.dir/graph/gap_stats.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/CMakeFiles/parhde.dir/graph/generators.cpp.o" "gcc" "src/CMakeFiles/parhde.dir/graph/generators.cpp.o.d"
  "/root/repo/src/graph/io.cpp" "src/CMakeFiles/parhde.dir/graph/io.cpp.o" "gcc" "src/CMakeFiles/parhde.dir/graph/io.cpp.o.d"
  "/root/repo/src/graph/ordering.cpp" "src/CMakeFiles/parhde.dir/graph/ordering.cpp.o" "gcc" "src/CMakeFiles/parhde.dir/graph/ordering.cpp.o.d"
  "/root/repo/src/hde/force_directed.cpp" "src/CMakeFiles/parhde.dir/hde/force_directed.cpp.o" "gcc" "src/CMakeFiles/parhde.dir/hde/force_directed.cpp.o.d"
  "/root/repo/src/hde/parhde.cpp" "src/CMakeFiles/parhde.dir/hde/parhde.cpp.o" "gcc" "src/CMakeFiles/parhde.dir/hde/parhde.cpp.o.d"
  "/root/repo/src/hde/partition.cpp" "src/CMakeFiles/parhde.dir/hde/partition.cpp.o" "gcc" "src/CMakeFiles/parhde.dir/hde/partition.cpp.o.d"
  "/root/repo/src/hde/partition_refine.cpp" "src/CMakeFiles/parhde.dir/hde/partition_refine.cpp.o" "gcc" "src/CMakeFiles/parhde.dir/hde/partition_refine.cpp.o.d"
  "/root/repo/src/hde/phde.cpp" "src/CMakeFiles/parhde.dir/hde/phde.cpp.o" "gcc" "src/CMakeFiles/parhde.dir/hde/phde.cpp.o.d"
  "/root/repo/src/hde/pivot_mds.cpp" "src/CMakeFiles/parhde.dir/hde/pivot_mds.cpp.o" "gcc" "src/CMakeFiles/parhde.dir/hde/pivot_mds.cpp.o.d"
  "/root/repo/src/hde/pivots.cpp" "src/CMakeFiles/parhde.dir/hde/pivots.cpp.o" "gcc" "src/CMakeFiles/parhde.dir/hde/pivots.cpp.o.d"
  "/root/repo/src/hde/prior_baseline.cpp" "src/CMakeFiles/parhde.dir/hde/prior_baseline.cpp.o" "gcc" "src/CMakeFiles/parhde.dir/hde/prior_baseline.cpp.o.d"
  "/root/repo/src/hde/refine.cpp" "src/CMakeFiles/parhde.dir/hde/refine.cpp.o" "gcc" "src/CMakeFiles/parhde.dir/hde/refine.cpp.o.d"
  "/root/repo/src/hde/stress.cpp" "src/CMakeFiles/parhde.dir/hde/stress.cpp.o" "gcc" "src/CMakeFiles/parhde.dir/hde/stress.cpp.o.d"
  "/root/repo/src/hde/zoom.cpp" "src/CMakeFiles/parhde.dir/hde/zoom.cpp.o" "gcc" "src/CMakeFiles/parhde.dir/hde/zoom.cpp.o.d"
  "/root/repo/src/linalg/dense_matrix.cpp" "src/CMakeFiles/parhde.dir/linalg/dense_matrix.cpp.o" "gcc" "src/CMakeFiles/parhde.dir/linalg/dense_matrix.cpp.o.d"
  "/root/repo/src/linalg/gemm.cpp" "src/CMakeFiles/parhde.dir/linalg/gemm.cpp.o" "gcc" "src/CMakeFiles/parhde.dir/linalg/gemm.cpp.o.d"
  "/root/repo/src/linalg/gram_schmidt.cpp" "src/CMakeFiles/parhde.dir/linalg/gram_schmidt.cpp.o" "gcc" "src/CMakeFiles/parhde.dir/linalg/gram_schmidt.cpp.o.d"
  "/root/repo/src/linalg/jacobi_eigen.cpp" "src/CMakeFiles/parhde.dir/linalg/jacobi_eigen.cpp.o" "gcc" "src/CMakeFiles/parhde.dir/linalg/jacobi_eigen.cpp.o.d"
  "/root/repo/src/linalg/laplacian_ops.cpp" "src/CMakeFiles/parhde.dir/linalg/laplacian_ops.cpp.o" "gcc" "src/CMakeFiles/parhde.dir/linalg/laplacian_ops.cpp.o.d"
  "/root/repo/src/linalg/lobpcg.cpp" "src/CMakeFiles/parhde.dir/linalg/lobpcg.cpp.o" "gcc" "src/CMakeFiles/parhde.dir/linalg/lobpcg.cpp.o.d"
  "/root/repo/src/linalg/vector_ops.cpp" "src/CMakeFiles/parhde.dir/linalg/vector_ops.cpp.o" "gcc" "src/CMakeFiles/parhde.dir/linalg/vector_ops.cpp.o.d"
  "/root/repo/src/multilevel/coarsen.cpp" "src/CMakeFiles/parhde.dir/multilevel/coarsen.cpp.o" "gcc" "src/CMakeFiles/parhde.dir/multilevel/coarsen.cpp.o.d"
  "/root/repo/src/multilevel/matching.cpp" "src/CMakeFiles/parhde.dir/multilevel/matching.cpp.o" "gcc" "src/CMakeFiles/parhde.dir/multilevel/matching.cpp.o.d"
  "/root/repo/src/multilevel/multilevel_hde.cpp" "src/CMakeFiles/parhde.dir/multilevel/multilevel_hde.cpp.o" "gcc" "src/CMakeFiles/parhde.dir/multilevel/multilevel_hde.cpp.o.d"
  "/root/repo/src/sssp/delta_stepping.cpp" "src/CMakeFiles/parhde.dir/sssp/delta_stepping.cpp.o" "gcc" "src/CMakeFiles/parhde.dir/sssp/delta_stepping.cpp.o.d"
  "/root/repo/src/sssp/dijkstra.cpp" "src/CMakeFiles/parhde.dir/sssp/dijkstra.cpp.o" "gcc" "src/CMakeFiles/parhde.dir/sssp/dijkstra.cpp.o.d"
  "/root/repo/src/util/cli.cpp" "src/CMakeFiles/parhde.dir/util/cli.cpp.o" "gcc" "src/CMakeFiles/parhde.dir/util/cli.cpp.o.d"
  "/root/repo/src/util/fibonacci.cpp" "src/CMakeFiles/parhde.dir/util/fibonacci.cpp.o" "gcc" "src/CMakeFiles/parhde.dir/util/fibonacci.cpp.o.d"
  "/root/repo/src/util/memory.cpp" "src/CMakeFiles/parhde.dir/util/memory.cpp.o" "gcc" "src/CMakeFiles/parhde.dir/util/memory.cpp.o.d"
  "/root/repo/src/util/parallel.cpp" "src/CMakeFiles/parhde.dir/util/parallel.cpp.o" "gcc" "src/CMakeFiles/parhde.dir/util/parallel.cpp.o.d"
  "/root/repo/src/util/prng.cpp" "src/CMakeFiles/parhde.dir/util/prng.cpp.o" "gcc" "src/CMakeFiles/parhde.dir/util/prng.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/parhde.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/parhde.dir/util/table.cpp.o.d"
  "/root/repo/src/util/timer.cpp" "src/CMakeFiles/parhde.dir/util/timer.cpp.o" "gcc" "src/CMakeFiles/parhde.dir/util/timer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
