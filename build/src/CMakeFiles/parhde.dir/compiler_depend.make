# Empty compiler generated dependencies file for parhde.
# This may be replaced when dependencies are built.
