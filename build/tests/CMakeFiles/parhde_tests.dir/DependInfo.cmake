
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_bfs_heuristics.cpp" "tests/CMakeFiles/parhde_tests.dir/test_bfs_heuristics.cpp.o" "gcc" "tests/CMakeFiles/parhde_tests.dir/test_bfs_heuristics.cpp.o.d"
  "/root/repo/tests/test_builder.cpp" "tests/CMakeFiles/parhde_tests.dir/test_builder.cpp.o" "gcc" "tests/CMakeFiles/parhde_tests.dir/test_builder.cpp.o.d"
  "/root/repo/tests/test_cli.cpp" "tests/CMakeFiles/parhde_tests.dir/test_cli.cpp.o" "gcc" "tests/CMakeFiles/parhde_tests.dir/test_cli.cpp.o.d"
  "/root/repo/tests/test_cli_tool.cpp" "tests/CMakeFiles/parhde_tests.dir/test_cli_tool.cpp.o" "gcc" "tests/CMakeFiles/parhde_tests.dir/test_cli_tool.cpp.o.d"
  "/root/repo/tests/test_coarsen.cpp" "tests/CMakeFiles/parhde_tests.dir/test_coarsen.cpp.o" "gcc" "tests/CMakeFiles/parhde_tests.dir/test_coarsen.cpp.o.d"
  "/root/repo/tests/test_components.cpp" "tests/CMakeFiles/parhde_tests.dir/test_components.cpp.o" "gcc" "tests/CMakeFiles/parhde_tests.dir/test_components.cpp.o.d"
  "/root/repo/tests/test_csr_graph.cpp" "tests/CMakeFiles/parhde_tests.dir/test_csr_graph.cpp.o" "gcc" "tests/CMakeFiles/parhde_tests.dir/test_csr_graph.cpp.o.d"
  "/root/repo/tests/test_dense_matrix.cpp" "tests/CMakeFiles/parhde_tests.dir/test_dense_matrix.cpp.o" "gcc" "tests/CMakeFiles/parhde_tests.dir/test_dense_matrix.cpp.o.d"
  "/root/repo/tests/test_draw.cpp" "tests/CMakeFiles/parhde_tests.dir/test_draw.cpp.o" "gcc" "tests/CMakeFiles/parhde_tests.dir/test_draw.cpp.o.d"
  "/root/repo/tests/test_edge_cases.cpp" "tests/CMakeFiles/parhde_tests.dir/test_edge_cases.cpp.o" "gcc" "tests/CMakeFiles/parhde_tests.dir/test_edge_cases.cpp.o.d"
  "/root/repo/tests/test_fibonacci.cpp" "tests/CMakeFiles/parhde_tests.dir/test_fibonacci.cpp.o" "gcc" "tests/CMakeFiles/parhde_tests.dir/test_fibonacci.cpp.o.d"
  "/root/repo/tests/test_force_directed.cpp" "tests/CMakeFiles/parhde_tests.dir/test_force_directed.cpp.o" "gcc" "tests/CMakeFiles/parhde_tests.dir/test_force_directed.cpp.o.d"
  "/root/repo/tests/test_frontier.cpp" "tests/CMakeFiles/parhde_tests.dir/test_frontier.cpp.o" "gcc" "tests/CMakeFiles/parhde_tests.dir/test_frontier.cpp.o.d"
  "/root/repo/tests/test_fuzz.cpp" "tests/CMakeFiles/parhde_tests.dir/test_fuzz.cpp.o" "gcc" "tests/CMakeFiles/parhde_tests.dir/test_fuzz.cpp.o.d"
  "/root/repo/tests/test_gap_stats.cpp" "tests/CMakeFiles/parhde_tests.dir/test_gap_stats.cpp.o" "gcc" "tests/CMakeFiles/parhde_tests.dir/test_gap_stats.cpp.o.d"
  "/root/repo/tests/test_gemm.cpp" "tests/CMakeFiles/parhde_tests.dir/test_gemm.cpp.o" "gcc" "tests/CMakeFiles/parhde_tests.dir/test_gemm.cpp.o.d"
  "/root/repo/tests/test_generators.cpp" "tests/CMakeFiles/parhde_tests.dir/test_generators.cpp.o" "gcc" "tests/CMakeFiles/parhde_tests.dir/test_generators.cpp.o.d"
  "/root/repo/tests/test_gram_schmidt.cpp" "tests/CMakeFiles/parhde_tests.dir/test_gram_schmidt.cpp.o" "gcc" "tests/CMakeFiles/parhde_tests.dir/test_gram_schmidt.cpp.o.d"
  "/root/repo/tests/test_hde_variants.cpp" "tests/CMakeFiles/parhde_tests.dir/test_hde_variants.cpp.o" "gcc" "tests/CMakeFiles/parhde_tests.dir/test_hde_variants.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/parhde_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/parhde_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_io.cpp" "tests/CMakeFiles/parhde_tests.dir/test_io.cpp.o" "gcc" "tests/CMakeFiles/parhde_tests.dir/test_io.cpp.o.d"
  "/root/repo/tests/test_io_files.cpp" "tests/CMakeFiles/parhde_tests.dir/test_io_files.cpp.o" "gcc" "tests/CMakeFiles/parhde_tests.dir/test_io_files.cpp.o.d"
  "/root/repo/tests/test_jacobi_eigen.cpp" "tests/CMakeFiles/parhde_tests.dir/test_jacobi_eigen.cpp.o" "gcc" "tests/CMakeFiles/parhde_tests.dir/test_jacobi_eigen.cpp.o.d"
  "/root/repo/tests/test_laplacian_ops.cpp" "tests/CMakeFiles/parhde_tests.dir/test_laplacian_ops.cpp.o" "gcc" "tests/CMakeFiles/parhde_tests.dir/test_laplacian_ops.cpp.o.d"
  "/root/repo/tests/test_ldd.cpp" "tests/CMakeFiles/parhde_tests.dir/test_ldd.cpp.o" "gcc" "tests/CMakeFiles/parhde_tests.dir/test_ldd.cpp.o.d"
  "/root/repo/tests/test_lobpcg.cpp" "tests/CMakeFiles/parhde_tests.dir/test_lobpcg.cpp.o" "gcc" "tests/CMakeFiles/parhde_tests.dir/test_lobpcg.cpp.o.d"
  "/root/repo/tests/test_matching.cpp" "tests/CMakeFiles/parhde_tests.dir/test_matching.cpp.o" "gcc" "tests/CMakeFiles/parhde_tests.dir/test_matching.cpp.o.d"
  "/root/repo/tests/test_metrics.cpp" "tests/CMakeFiles/parhde_tests.dir/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/parhde_tests.dir/test_metrics.cpp.o.d"
  "/root/repo/tests/test_multilevel.cpp" "tests/CMakeFiles/parhde_tests.dir/test_multilevel.cpp.o" "gcc" "tests/CMakeFiles/parhde_tests.dir/test_multilevel.cpp.o.d"
  "/root/repo/tests/test_ordering.cpp" "tests/CMakeFiles/parhde_tests.dir/test_ordering.cpp.o" "gcc" "tests/CMakeFiles/parhde_tests.dir/test_ordering.cpp.o.d"
  "/root/repo/tests/test_parallel_bfs.cpp" "tests/CMakeFiles/parhde_tests.dir/test_parallel_bfs.cpp.o" "gcc" "tests/CMakeFiles/parhde_tests.dir/test_parallel_bfs.cpp.o.d"
  "/root/repo/tests/test_parallel_util.cpp" "tests/CMakeFiles/parhde_tests.dir/test_parallel_util.cpp.o" "gcc" "tests/CMakeFiles/parhde_tests.dir/test_parallel_util.cpp.o.d"
  "/root/repo/tests/test_parhde.cpp" "tests/CMakeFiles/parhde_tests.dir/test_parhde.cpp.o" "gcc" "tests/CMakeFiles/parhde_tests.dir/test_parhde.cpp.o.d"
  "/root/repo/tests/test_partition.cpp" "tests/CMakeFiles/parhde_tests.dir/test_partition.cpp.o" "gcc" "tests/CMakeFiles/parhde_tests.dir/test_partition.cpp.o.d"
  "/root/repo/tests/test_partition_refine.cpp" "tests/CMakeFiles/parhde_tests.dir/test_partition_refine.cpp.o" "gcc" "tests/CMakeFiles/parhde_tests.dir/test_partition_refine.cpp.o.d"
  "/root/repo/tests/test_phde.cpp" "tests/CMakeFiles/parhde_tests.dir/test_phde.cpp.o" "gcc" "tests/CMakeFiles/parhde_tests.dir/test_phde.cpp.o.d"
  "/root/repo/tests/test_pivot_mds.cpp" "tests/CMakeFiles/parhde_tests.dir/test_pivot_mds.cpp.o" "gcc" "tests/CMakeFiles/parhde_tests.dir/test_pivot_mds.cpp.o.d"
  "/root/repo/tests/test_pivots.cpp" "tests/CMakeFiles/parhde_tests.dir/test_pivots.cpp.o" "gcc" "tests/CMakeFiles/parhde_tests.dir/test_pivots.cpp.o.d"
  "/root/repo/tests/test_png.cpp" "tests/CMakeFiles/parhde_tests.dir/test_png.cpp.o" "gcc" "tests/CMakeFiles/parhde_tests.dir/test_png.cpp.o.d"
  "/root/repo/tests/test_prior_baseline.cpp" "tests/CMakeFiles/parhde_tests.dir/test_prior_baseline.cpp.o" "gcc" "tests/CMakeFiles/parhde_tests.dir/test_prior_baseline.cpp.o.d"
  "/root/repo/tests/test_prng.cpp" "tests/CMakeFiles/parhde_tests.dir/test_prng.cpp.o" "gcc" "tests/CMakeFiles/parhde_tests.dir/test_prng.cpp.o.d"
  "/root/repo/tests/test_refine.cpp" "tests/CMakeFiles/parhde_tests.dir/test_refine.cpp.o" "gcc" "tests/CMakeFiles/parhde_tests.dir/test_refine.cpp.o.d"
  "/root/repo/tests/test_serial_bfs.cpp" "tests/CMakeFiles/parhde_tests.dir/test_serial_bfs.cpp.o" "gcc" "tests/CMakeFiles/parhde_tests.dir/test_serial_bfs.cpp.o.d"
  "/root/repo/tests/test_sssp.cpp" "tests/CMakeFiles/parhde_tests.dir/test_sssp.cpp.o" "gcc" "tests/CMakeFiles/parhde_tests.dir/test_sssp.cpp.o.d"
  "/root/repo/tests/test_stress.cpp" "tests/CMakeFiles/parhde_tests.dir/test_stress.cpp.o" "gcc" "tests/CMakeFiles/parhde_tests.dir/test_stress.cpp.o.d"
  "/root/repo/tests/test_table.cpp" "tests/CMakeFiles/parhde_tests.dir/test_table.cpp.o" "gcc" "tests/CMakeFiles/parhde_tests.dir/test_table.cpp.o.d"
  "/root/repo/tests/test_timer.cpp" "tests/CMakeFiles/parhde_tests.dir/test_timer.cpp.o" "gcc" "tests/CMakeFiles/parhde_tests.dir/test_timer.cpp.o.d"
  "/root/repo/tests/test_vector_ops.cpp" "tests/CMakeFiles/parhde_tests.dir/test_vector_ops.cpp.o" "gcc" "tests/CMakeFiles/parhde_tests.dir/test_vector_ops.cpp.o.d"
  "/root/repo/tests/test_zoom.cpp" "tests/CMakeFiles/parhde_tests.dir/test_zoom.cpp.o" "gcc" "tests/CMakeFiles/parhde_tests.dir/test_zoom.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/parhde.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
