# Empty compiler generated dependencies file for parhde_tests.
# This may be replaced when dependencies are built.
