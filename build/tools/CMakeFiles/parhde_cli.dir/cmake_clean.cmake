file(REMOVE_RECURSE
  "CMakeFiles/parhde_cli.dir/parhde_cli.cpp.o"
  "CMakeFiles/parhde_cli.dir/parhde_cli.cpp.o.d"
  "parhde_cli"
  "parhde_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parhde_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
