# Empty compiler generated dependencies file for parhde_cli.
# This may be replaced when dependencies are built.
