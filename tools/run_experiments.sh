#!/usr/bin/env bash
# Regenerates every paper table/figure and the example drawings.
#
#   tools/run_experiments.sh [build-dir] [output-dir]
#
# Produces <output-dir>/bench_output.txt, <output-dir>/test_output.txt, and
# all example PNGs/SVGs in <output-dir>/figures.
set -euo pipefail

BUILD="${1:-build}"
OUT="${2:-experiments}"
mkdir -p "$OUT/figures"

echo "== building =="
cmake --build "$BUILD"

echo "== tests =="
ctest --test-dir "$BUILD" 2>&1 | tee "$OUT/test_output.txt" | tail -3

echo "== benchmarks =="
{
  for b in "$BUILD"/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    echo "##### $(basename "$b")"
    "$b"
  done
} 2>&1 | tee "$OUT/bench_output.txt" | grep '#####'

echo "== figures =="
(
  cd "$OUT/figures"
  for ex in quickstart draw_gallery zoom_neighborhood partition_viz \
            spectral_refine multilevel_layout weighted_layout layout3d; do
    echo "--- $ex"
    "../../$BUILD/examples/$ex"
  done
)

echo "done: $OUT/{test_output.txt,bench_output.txt,figures/}"
