// parhde_serve — persistent layout daemon over a unix-domain socket.
//
// Usage:
//   parhde_serve --socket=<path> [--workers=2] [--queue=64] [--cache=8]
//                [--snapshots=<dir>] [--deadline=<sec>] [--threads=N]
//                [--max-frame=<bytes>] [--report=<file>]
//
// The daemon binds the socket, prints "listening on <path>" once it is
// ready (harnesses wait for that line), and serves layout requests until
// SIGTERM or SIGINT. The drain is graceful: the listener closes, queued
// requests are refused with the typed `overloaded` response, every
// admitted request runs to completion and its response is flushed, then
// the process exits 0. --report writes an aggregate run report (schema
// parhde-run-report/2) at drain time summarizing the service counters.
//
// Protocol and request grammar: src/service/protocol.hpp. Exit codes:
// the shared table in src/util/status.hpp (0 clean drain, 2 usage,
// 3 socket/bind failures, 14 is never exited by the daemon itself — it is
// the per-request `overloaded` response's exit_code for clients).
#include <omp.h>
#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>

#include "obs/report.hpp"
#include "service/server.hpp"
#include "util/cli.hpp"
#include "util/status.hpp"
#include "util/timer.hpp"

namespace {

// Self-pipe: the handler only writes one byte; the main thread blocks on
// the read end and runs the drain outside signal context.
int g_signal_pipe[2] = {-1, -1};

void OnSignal(int) {
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: parhde_serve --socket=<path> [--workers=2] [--queue=64]\n"
      "                    [--cache=8] [--snapshots=<dir>] [--deadline=<sec>]\n"
      "                    [--threads=N] [--max-frame=<bytes>]\n"
      "                    [--report=<file>]\n");
  return 2;
}

void WriteDrainReport(const std::string& path,
                      parhde::service::LayoutService& service,
                      double uptime_seconds) {
  const auto q = service.queue().GetStats();
  const auto c = service.cache().GetStats();
  parhde::obs::RunReport report;
  report.tool = "parhde_serve";
  report.graph = service.options().socket_path;
  report.algo = "service";
  report.config = {
      {"workers", std::to_string(service.options().workers)},
      {"queue", std::to_string(service.options().queue_capacity)},
      {"cache", std::to_string(service.options().cache_capacity)},
  };
  report.total_seconds = uptime_seconds;
  report.metrics = {
      {"completed_requests",
       static_cast<double>(service.completed_requests())},
      {"admitted", static_cast<double>(q.admitted)},
      {"shed", static_cast<double>(q.shed)},
      {"queue_peak_depth", static_cast<double>(q.peak_depth)},
      {"cache_stat_hits", static_cast<double>(c.stat_hits)},
      {"cache_content_hits", static_cast<double>(c.content_hits)},
      {"cache_misses", static_cast<double>(c.misses)},
      {"cache_snapshot_loads", static_cast<double>(c.snapshot_loads)},
      {"cache_evictions", static_cast<double>(c.evictions)},
  };
  parhde::obs::WriteReportFile(report, path);
}

}  // namespace

int main(int argc, char** argv) {
  parhde::ArgParser args(argc, argv);
  try {
    parhde::service::ServiceOptions options;
    options.socket_path = args.GetString("socket", "");
    if (options.socket_path.empty()) return Usage();
    options.queue_capacity =
        static_cast<std::size_t>(args.GetInt("queue", 64));
    options.workers = static_cast<int>(args.GetInt("workers", 2));
    options.cache_capacity =
        static_cast<std::size_t>(args.GetInt("cache", 8));
    options.snapshot_dir = args.GetString("snapshots", "");
    options.default_deadline_seconds = args.GetDouble("deadline", 0.0);
    const std::int64_t max_frame = args.GetInt("max-frame", 0);
    if (max_frame > 0) {
      options.max_frame_bytes = static_cast<std::uint32_t>(max_frame);
    }
    if (args.Has("threads")) {
      const auto threads = static_cast<int>(args.GetInt("threads", 0));
      if (threads < 1) {
        throw parhde::ParhdeError(parhde::ErrorCode::kInvalidValue, "serve",
                                  "--threads must be a positive integer");
      }
      omp_set_num_threads(threads);
    }
    const std::string report_path = args.GetString("report", "");

    if (::pipe(g_signal_pipe) != 0) {
      throw parhde::ParhdeError(parhde::ErrorCode::kIo, "serve",
                                std::string("pipe() failed: ") +
                                    std::strerror(errno));
    }
    struct sigaction sa{};
    sa.sa_handler = OnSignal;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);
    ::signal(SIGPIPE, SIG_IGN);  // a vanished client must not kill us

    parhde::WallTimer uptime;
    parhde::service::LayoutService service(options);
    service.Start();
    // The readiness line harnesses wait for — flushed so a pipe reader
    // sees it immediately.
    std::printf("listening on %s\n", options.socket_path.c_str());
    std::fflush(stdout);

    char byte = 0;
    while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
    }
    std::fprintf(stderr, "parhde_serve: draining\n");
    service.RequestDrain();
    service.Wait();
    if (!report_path.empty()) {
      WriteDrainReport(report_path, service, uptime.Seconds());
    }
    std::fprintf(stderr, "parhde_serve: drained %lld requests\n",
                 static_cast<long long>(service.completed_requests()));
    return 0;
  } catch (const parhde::ParhdeError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return parhde::ExitCodeFor(e.code());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
