// parhde_cli — the production command-line front end to the library.
//
// Subcommands:
//   generate  --family=<urand|kron|grid|grid3d|road|plate|chain|ring>
//             [--n/--scale/--rows/--cols/--ef/--seed] --out=<file.mtx>
//   stats     --in=<file.mtx|file.el>   (sizes, degrees, diameter, gaps)
//   layout    --in=<...> [--algo=parhde|phde|pivotmds|prior|multilevel]
//             [--s=10] [--axes=2] [--pivots=kcenters|random]
//             [--dortho=mgs|cgs|blocked] [--gs-block=8]  (orthogonalizer;
//             --gs=mgs|cgs remains as the historical spelling)
//             [--spmm-block=0|1|4|8|16]  (TripleProd SpMM column block;
//             0 auto-tunes, 1 forces the per-column reference kernel)
//             [--metric=degree|unit] [--basis=b|s] [--coupled] [--seed=1]
//             [--kernel=parbfs|serialbfs|msbfs|sssp] [--delta=<w>]
//             [--sssp-engine=auto|parallel|concurrent]
//             [--disconnected=pack|largest|reject]  (default: largest)
//             [--coords=out.xy] [--png=out.png] [--svg=out.svg]
//             [--report=run.json]  (machine-readable run report)
//             [--trace=trace.json] (Chrome trace-event span timeline)
//             [--timeout=<sec>]       (whole-run deadline)
//             [--phase-timeout=<sec>] (per-phase budget: distance, DOrtho,
//             eigensolve each get this much before their ladder retries)
//             [--recovery=ladder|strict]  (downgrade failed kernels, or
//             surface the first typed error; default ladder)
//
// Every subcommand accepts --threads=N (caps the OpenMP thread count),
// --report=<file> (machine-readable run report, schema parhde-run-report/2),
// --hw-counters[=off|phase|thread] (perf_event_open counter attribution in
// the report; bare --hw-counters means "phase"; requires a build with
// -DPARHDE_HWPERF=ON — on hosts where perf_event_open is denied the run
// still succeeds and the report says hw.available=false plus the reason),
// and --fault-plan=<plan> (deterministic fault injection; requires a build
// with -DPARHDE_FAULT_INJECTION=ON — see src/resilience/fault_injection.hpp
// for the site catalog and plan grammar). The PARHDE_FAULT_PLAN environment
// variable is the flag's fallback spelling for harnesses that cannot edit
// argv.
//   partition --in=<...> [--parts=4] [--refine] [--svg=out.svg]
//   draw      --in=<graph> --coords=<file.xy> [--png=out.png]
//             [--svg=out.svg] [--canvas=800] [--aa]   (render saved coords)
//
// Inputs ending in .mtx parse as MatrixMarket, .bin as the binary CSR
// snapshot, anything else as an edge list. Graphs are preprocessed like the
// paper (§4.1): symmetrize, dedup, drop self loops. The layout subcommand
// handles disconnected inputs per --disconnected; the other subcommands
// extract the largest connected component as before.
//
// Exit codes (see src/util/status.hpp): 0 success, 1 internal error,
// 2 usage, 3 I/O, 4 parse, 5 corrupt binary, 6 invalid value, 7 graph too
// small, 8 disconnected input rejected, 9 numerical failure,
// 10 eigensolver did not converge, 11 deadline exceeded, 12 resources
// exhausted (allocation failure).
#include <omp.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <optional>
#include <string>

#include "draw/coords_io.hpp"
#include "draw/layout.hpp"
#include "draw/png_writer.hpp"
#include "draw/raster.hpp"
#include "draw/svg_writer.hpp"
#include "graph/builder.hpp"
#include "graph/components.hpp"
#include "graph/gap_stats.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "bfs/serial_bfs.hpp"
#include "hde/components_layout.hpp"
#include "hde/parhde.hpp"
#include "hde/partition.hpp"
#include "hde/partition_refine.hpp"
#include "hde/phde.hpp"
#include "hde/pivot_mds.hpp"
#include "hde/prior_baseline.hpp"
#include "multilevel/multilevel_hde.hpp"
#include "obs/hwperf.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "resilience/deadline.hpp"
#include "resilience/fault_injection.hpp"
#include "util/cli.hpp"
#include "util/status.hpp"
#include "util/table.hpp"

namespace {

using namespace parhde;

int Usage() {
  std::fprintf(stderr,
               "usage: parhde_cli <generate|stats|layout|partition> [flags]\n"
               "see the header comment of tools/parhde_cli.cpp for flags\n");
  return 2;
}

bool HasSuffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Loads --in without dropping any component. MatrixMarket / edge-list
/// inputs go through the usual preprocessing (symmetrize, dedup, drop self
/// loops); .bin snapshots are already CSR.
CsrGraph LoadRawGraph(const ArgParser& args) {
  const std::string path = args.GetString("in", "");
  if (path.empty()) {
    throw ParhdeError(ErrorCode::kUsage, "cli",
                      "--in=<graph file> is required");
  }
  if (HasSuffix(path, ".bin")) return ReadBinaryFile(path);
  MatrixMarketData data;
  if (HasSuffix(path, ".mtx")) {
    data = ReadMatrixMarketFile(path);
  } else {
    data = ReadEdgeListFile(path);
  }
  BuildOptions opts;
  opts.keep_weights = !data.pattern;
  return BuildCsrGraph(data.n, data.edges, opts);
}

CsrGraph LoadGraph(const ArgParser& args) {
  CsrGraph raw = LoadRawGraph(args);
  auto extraction = LargestComponent(raw);
  std::printf("loaded %s: n=%d m=%lld (largest component of %d vertices)\n",
              args.GetString("in", "").c_str(),
              extraction.graph.NumVertices(),
              static_cast<long long>(extraction.graph.NumEdges()),
              raw.NumVertices());
  return std::move(extraction.graph);
}

/// --report=<file> for the subcommands that do not hand-build their own
/// RunReport: snapshots the observability registries (counters, thread
/// stats, hw counters, peak RSS) into `report` and writes it. The caller
/// fills identity, graph shape, config, and total_seconds.
void MaybeWriteReport(const ArgParser& args, obs::RunReport report) {
  const std::string path = args.GetString("report", "");
  if (path.empty()) return;
  report.CollectObservability();
  obs::WriteReportFile(report, path);
  std::printf("wrote %s\n", path.c_str());
}

int CmdGenerate(const ArgParser& args) {
  WallTimer timer;
  const std::string family = args.GetString("family", "kron");
  const std::string out = args.GetString("out", "graph.mtx");
  const auto seed = static_cast<std::uint64_t>(args.GetInt("seed", 1));

  EdgeList edges;
  vid_t n = 0;
  if (family == "urand") {
    n = static_cast<vid_t>(args.GetInt("n", 1 << 16));
    edges = GenUniformRandom(n, args.GetInt("m", 8LL * n), seed);
  } else if (family == "kron") {
    const int scale = static_cast<int>(args.GetInt("scale", 15));
    n = vid_t{1} << scale;
    edges = GenKronecker(scale, static_cast<int>(args.GetInt("ef", 16)), seed);
  } else if (family == "grid") {
    const auto rows = static_cast<vid_t>(args.GetInt("rows", 300));
    const auto cols = static_cast<vid_t>(args.GetInt("cols", 300));
    n = rows * cols;
    edges = GenGrid2d(rows, cols);
  } else if (family == "grid3d") {
    const auto side = static_cast<vid_t>(args.GetInt("side", 30));
    n = side * side * side;
    edges = GenGrid3d(side, side, side);
  } else if (family == "road") {
    const auto rows = static_cast<vid_t>(args.GetInt("rows", 300));
    const auto cols = static_cast<vid_t>(args.GetInt("cols", 300));
    n = rows * cols;
    edges = GenRoad(rows, cols, args.GetDouble("diag", 0.05), seed);
  } else if (family == "plate") {
    const auto rows = static_cast<vid_t>(args.GetInt("rows", 128));
    const auto cols = static_cast<vid_t>(args.GetInt("cols", 128));
    n = PlateNumVertices(rows, cols);
    edges = GenPlateWithHoles(rows, cols);
  } else if (family == "chain") {
    n = static_cast<vid_t>(args.GetInt("n", 1000));
    edges = GenChain(n);
  } else if (family == "ring") {
    n = static_cast<vid_t>(args.GetInt("n", 1000));
    edges = GenRing(n);
  } else {
    std::fprintf(stderr, "unknown family '%s'\n", family.c_str());
    return 2;
  }

  const CsrGraph graph = BuildCsrGraph(n, edges);
  WriteMatrixMarketFile(graph, out);
  std::printf("wrote %s: n=%d m=%lld\n", out.c_str(), graph.NumVertices(),
              static_cast<long long>(graph.NumEdges()));

  obs::RunReport report;
  report.tool = "parhde_cli generate";
  report.graph = "gen:" + family;
  report.algo = family;
  report.vertices = graph.NumVertices();
  report.edges = graph.NumEdges();
  report.config = {{"family", family},
                   {"seed", std::to_string(seed)},
                   {"out", out}};
  report.total_seconds = timer.Seconds();
  MaybeWriteReport(args, std::move(report));
  return 0;
}

int CmdStats(const ArgParser& args) {
  WallTimer timer;
  const CsrGraph graph = LoadGraph(args);
  const GapSummary gaps = ComputeGapSummary(graph);
  const auto diameter = PseudoDiameter(graph);

  TextTable table({"metric", "value"});
  table.AddRow({"vertices", TextTable::Int(graph.NumVertices())});
  table.AddRow({"edges", TextTable::Int(graph.NumEdges())});
  table.AddRow({"max degree", TextTable::Int(graph.MaxDegree())});
  table.AddRow({"avg degree",
                TextTable::Num(2.0 * static_cast<double>(graph.NumEdges()) /
                                   std::max<vid_t>(graph.NumVertices(), 1),
                               2)});
  table.AddRow({"pseudo-diameter", TextTable::Int(diameter)});
  table.AddRow({"mean adjacency gap", TextTable::Num(gaps.mean_gap, 1)});
  table.AddRow({"gaps within cache line",
                TextTable::Num(100.0 * gaps.cache_line_fraction, 1) + "%"});
  std::printf("%s", table.Render().c_str());

  obs::RunReport report;
  report.tool = "parhde_cli stats";
  report.graph = args.GetString("in", "");
  report.algo = "stats";
  report.vertices = graph.NumVertices();
  report.edges = graph.NumEdges();
  report.metrics.emplace_back("pseudo_diameter",
                              static_cast<double>(diameter));
  report.metrics.emplace_back("mean_adjacency_gap", gaps.mean_gap);
  report.metrics.emplace_back("cache_line_gap_fraction",
                              gaps.cache_line_fraction);
  report.total_seconds = timer.Seconds();
  MaybeWriteReport(args, std::move(report));
  return 0;
}

HdeOptions OptionsFromFlags(const ArgParser& args) {
  HdeOptions options;
  options.subspace_dim = static_cast<int>(args.GetInt("s", 10));
  options.num_axes = static_cast<int>(args.GetInt("axes", 2));
  options.seed = static_cast<std::uint64_t>(args.GetInt("seed", 1));
  if (args.GetString("pivots", "kcenters") == "random") {
    options.pivots = PivotStrategy::Random;
  }
  // --dortho is the full orthogonalizer selector; --gs remains as the
  // historical spelling for the first two kinds.
  const std::string gs_default =
      args.GetChoice("gs", {"mgs", "cgs"}, "mgs");
  const std::string dortho =
      args.GetChoice("dortho", {"mgs", "cgs", "blocked"}, gs_default);
  if (dortho == "cgs") {
    options.gs_kind = GramSchmidtKind::Classical;
  } else if (dortho == "blocked") {
    options.gs_kind = GramSchmidtKind::Blocked;
  }
  options.gs_block = static_cast<int>(args.GetInt("gs-block", 8));
  if (options.gs_block < 1) {
    throw ParhdeError(ErrorCode::kInvalidValue, "cli",
                      "--gs-block must be a positive integer");
  }
  const auto spmm_block = static_cast<int>(args.GetInt("spmm-block", 0));
  if (spmm_block != 0 && spmm_block != 1 && spmm_block != 4 &&
      spmm_block != 8 && spmm_block != 16) {
    throw ParhdeError(ErrorCode::kInvalidValue, "cli",
                      "--spmm-block must be one of 0 (auto), 1, 4, 8, 16");
  }
  options.spmm_block = spmm_block;
  if (args.GetString("metric", "degree") == "unit") {
    options.metric = OrthoMetric::Unweighted;
  }
  if (args.GetString("basis", "b") == "s") {
    options.basis = CoordBasis::Subspace;
  }
  if (args.Has("coupled")) options.coupled_bfs_ortho = true;
  // --kernel selects the distance traversal; `parbfs` keeps the automatic
  // upgrade to the batched multi-source engine for random pivots with
  // s >= kMsBfsAutoThreshold, while `msbfs`/`serialbfs` force one engine.
  // --sssp is the historical spelling of --kernel=sssp.
  const std::string kernel = args.GetChoice(
      "kernel", {"parbfs", "serialbfs", "msbfs", "sssp"}, "parbfs");
  if (kernel == "serialbfs") {
    options.kernel = DistanceKernel::SerialBfs;
  } else if (kernel == "msbfs") {
    options.kernel = DistanceKernel::MultiSourceBfs;
  } else if (kernel == "sssp" || args.Has("sssp")) {
    options.kernel = DistanceKernel::DeltaStepping;
  }
  // --delta overrides the Δ heuristic (average edge weight); --sssp-engine
  // pins the weighted random-pivot scheduling instead of the s-vs-threads
  // auto split.
  const double delta = args.GetDouble("delta", 0.0);
  if (delta < 0.0) {
    throw ParhdeError(ErrorCode::kInvalidValue, "cli",
                      "--delta must be positive");
  }
  options.sssp.delta = delta;
  const std::string engine = args.GetChoice(
      "sssp-engine", {"auto", "parallel", "concurrent"}, "auto");
  if (engine == "parallel") {
    options.sssp_engine = SsspEngine::Parallel;
  } else if (engine == "concurrent") {
    options.sssp_engine = SsspEngine::Concurrent;
  }
  // Resilience: --recovery selects strict (surface the first typed error)
  // or ladder (downgrade and retry); --phase-timeout gives each of the
  // three recoverable phases the same per-attempt budget.
  if (args.GetChoice("recovery", {"ladder", "strict"}, "ladder") == "strict") {
    options.resilience.recovery = resilience::RecoveryPolicy::Strict;
  }
  const double phase_timeout = args.GetDouble("phase-timeout", 0.0);
  if (phase_timeout < 0.0) {
    throw ParhdeError(ErrorCode::kInvalidValue, "cli",
                      "--phase-timeout must be positive");
  }
  options.resilience.distance_budget_seconds = phase_timeout;
  options.resilience.dortho_budget_seconds = phase_timeout;
  options.resilience.eigensolve_budget_seconds = phase_timeout;
  return options;
}

void EmitOutputs(const ArgParser& args, const CsrGraph& graph,
                 const Layout& layout) {
  const std::string coords = args.GetString("coords", "");
  if (!coords.empty()) {
    WriteCoordinatesFile(layout, coords);
    std::printf("wrote %s\n", coords.c_str());
  }
  const std::string png = args.GetString("png", "");
  const std::string svg = args.GetString("svg", "");
  if (!png.empty() || !svg.empty()) {
    const int size = static_cast<int>(args.GetInt("canvas", 800));
    const PixelLayout px = NormalizeToCanvas(layout, size, size);
    if (!png.empty()) {
      WritePngFile(DrawGraph(graph, px), png);
      std::printf("wrote %s\n", png.c_str());
    }
    if (!svg.empty()) {
      WriteSvgFile(graph, px, svg);
      std::printf("wrote %s\n", svg.c_str());
    }
  }
}

int CmdLayout(const ArgParser& args) {
  // Fresh registries so the report covers exactly this run.
  obs::ResetObservability();
  const std::string trace_path = args.GetString("trace", "");
  if (!trace_path.empty()) obs::Tracer::SetEnabled(true);

  const CsrGraph graph = LoadRawGraph(args);
  if (graph.NumVertices() == 0) {
    throw ParhdeError(ErrorCode::kTooSmall, "layout",
                      "input graph has no vertices");
  }
  const HdeOptions options = OptionsFromFlags(args);
  const std::string algo = args.GetChoice(
      "algo", {"parhde", "phde", "pivotmds", "prior", "multilevel"},
      "parhde");
  const std::string policy = args.GetChoice(
      "disconnected", {"pack", "largest", "reject"}, "largest");

  ComponentsLayoutOptions copts;
  copts.policy = policy == "pack"     ? DisconnectedPolicy::Pack
                 : policy == "reject" ? DisconnectedPolicy::Reject
                                      : DisconnectedPolicy::Largest;

  HdeDriver driver;
  if (algo == "parhde") {
    driver = HdeDriver(&RunParHde);
  } else if (algo == "phde") {
    driver = HdeDriver(&RunPhde);
  } else if (algo == "pivotmds") {
    driver = HdeDriver(&RunPivotMds);
  } else if (algo == "prior") {
    driver = HdeDriver(&RunPriorHde);
  } else {  // multilevel
    driver = [](const CsrGraph& g, const HdeOptions& o) {
      MultilevelOptions ml;
      ml.hde = o;
      MultilevelResult r = RunMultilevelHde(g, ml);
      HdeResult out;
      out.layout = std::move(r.layout);
      out.timings = r.timings;
      return out;
    };
  }

  // --timeout arms the whole-run deadline for the layout computation only
  // (loading already happened; report/render work is not under the gun).
  const double timeout = args.GetDouble("timeout", 0.0);
  if (timeout < 0.0) {
    throw ParhdeError(ErrorCode::kInvalidValue, "cli",
                      "--timeout must be positive");
  }
  WallTimer timer;
  std::optional<resilience::DeadlineGuard> run_deadline;
  if (timeout > 0.0) run_deadline.emplace("run", timeout);
  const ComponentsLayoutResult res =
      RunHdeOnComponents(graph, options, copts, driver);
  run_deadline.reset();
  const double total_seconds = timer.Seconds();
  // The layout indexes the largest component when that policy dropped
  // vertices; every downstream consumer must use the matching graph.
  const CsrGraph& laid =
      res.used_subgraph ? res.subgraph.graph : graph;
  std::printf("loaded %s: n=%d m=%lld (%d component%s, policy=%s)\n",
              args.GetString("in", "").c_str(), laid.NumVertices(),
              static_cast<long long>(laid.NumEdges()),
              res.num_components, res.num_components == 1 ? "" : "s",
              policy.c_str());

  // One RunReport backs both the human summary and --report JSON, so the
  // two outputs cannot disagree.
  obs::RunReport report;
  report.tool = "parhde_cli layout";
  report.graph = args.GetString("in", "");
  report.algo = algo;
  report.vertices = laid.NumVertices();
  report.edges = laid.NumEdges();
  report.components = res.num_components;
  report.config = {
      {"algo", algo},
      {"s", std::to_string(options.subspace_dim)},
      {"axes", std::to_string(options.num_axes)},
      {"pivots", args.GetString("pivots", "kcenters")},
      {"gs", args.GetString("gs", "mgs")},
      {"dortho", options.gs_kind == GramSchmidtKind::Blocked    ? "blocked"
                 : options.gs_kind == GramSchmidtKind::Classical ? "cgs"
                                                                 : "mgs"},
      {"gs_block", std::to_string(options.gs_block)},
      {"spmm_block", std::to_string(options.spmm_block)},
      {"metric", args.GetString("metric", "degree")},
      {"basis", args.GetString("basis", "b")},
      {"coupled", args.Has("coupled") ? "true" : "false"},
      {"kernel", args.GetString("kernel", "parbfs")},
      {"delta", std::to_string(options.sssp.delta)},
      {"sssp_engine", args.GetString("sssp-engine", "auto")},
      {"disconnected", policy},
      {"seed", std::to_string(options.seed)},
      {"recovery", args.GetString("recovery", "ladder")},
      {"timeout", std::to_string(timeout)},
      {"phase_timeout", args.GetString("phase-timeout", "0")},
      {"hw_counters", obs::HwCounterModeName(obs::HwCountersMode())},
  };
  if (resilience::FaultPlanActive()) {
    report.config.emplace_back("fault_plan",
                               args.GetString("fault-plan", "(env)"));
  }
  report.total_seconds = total_seconds;
  report.timings = res.hde.timings;
  report.metrics.emplace_back(
      "edge_length_energy", NormalizedEdgeLengthEnergy(laid, res.hde.layout));
  // The requested subspace dimension is in config["s"]; the k-centers
  // phase may stop early at saturation (every reachable vertex already a
  // pivot), so the count actually used is a separate, observed metric.
  report.metrics.emplace_back("effective_pivots",
                              static_cast<double>(res.hde.pivots.size()));
  report.CollectObservability();

  std::printf("%s", obs::ReportToText(report).c_str());
  if (res.hde.components.size() > 1) {
    for (std::size_t c = 0; c < res.hde.components.size(); ++c) {
      const ComponentStat& st = res.hde.components[c];
      std::printf(
          "  component %zu: n=%d m=%lld box=[%.3g,%.3g]x[%.3g,%.3g]\n", c,
          st.vertices, static_cast<long long>(st.edges), st.min_x, st.max_x,
          st.min_y, st.max_y);
    }
  }

  const std::string report_path = args.GetString("report", "");
  if (!report_path.empty()) {
    obs::WriteReportFile(report, report_path);
    std::printf("wrote %s\n", report_path.c_str());
  }
  if (!trace_path.empty()) {
    obs::Tracer::SetEnabled(false);
    obs::Tracer::WriteJsonFile(trace_path);
    std::printf("wrote %s (%lld events, %lld dropped)\n", trace_path.c_str(),
                static_cast<long long>(obs::Tracer::EventCount()),
                static_cast<long long>(obs::Tracer::DroppedCount()));
  }

  EmitOutputs(args, laid, res.hde.layout);
  return 0;
}

int CmdPartition(const ArgParser& args) {
  WallTimer timer;
  const CsrGraph graph = LoadGraph(args);
  const int parts = static_cast<int>(args.GetInt("parts", 4));

  obs::RunReport report;
  report.tool = "parhde_cli partition";
  report.graph = args.GetString("in", "");
  report.algo = "partition";
  report.vertices = graph.NumVertices();
  report.edges = graph.NumEdges();
  report.config = {{"parts", std::to_string(parts)},
                   {"refine", args.Has("refine") ? "true" : "false"}};

  const HdeResult hde = RunParHde(graph, OptionsFromFlags(args));
  std::vector<int> labels = CoordinateBisection(hde.layout, parts);
  const auto cut = EdgeCut(graph, labels);
  std::printf("geometric partition: cut=%lld boundary=%d\n",
              static_cast<long long>(cut), BoundarySize(graph, labels));
  report.timings = hde.timings;
  report.metrics.emplace_back("edge_cut", static_cast<double>(cut));

  if (args.Has("refine")) {
    const RefinePartitionResult r = RefinePartition(graph, labels, parts);
    std::printf("after refinement:    cut=%lld (moves=%d, passes=%d)\n",
                static_cast<long long>(r.final_cut), r.moves, r.passes);
    report.metrics.emplace_back("refined_cut",
                                static_cast<double>(r.final_cut));
  }

  const std::string svg = args.GetString("svg", "");
  if (!svg.empty()) {
    const int size = static_cast<int>(args.GetInt("canvas", 800));
    const PixelLayout px = NormalizeToCanvas(hde.layout, size, size);
    std::vector<Rgb> colors;
    for (vid_t v = 0; v < graph.NumVertices(); ++v) {
      for (const vid_t u : graph.Neighbors(v)) {
        if (u <= v) continue;
        const int lv = labels[static_cast<std::size_t>(v)];
        const int lu = labels[static_cast<std::size_t>(u)];
        colors.push_back(lv == lu ? PartColor(lv) : color::kRed);
      }
    }
    WriteSvgFile(graph, px, svg, {}, colors);
    std::printf("wrote %s\n", svg.c_str());
  }
  report.total_seconds = timer.Seconds();
  MaybeWriteReport(args, std::move(report));
  return 0;
}

int CmdDraw(const ArgParser& args) {
  WallTimer timer;
  const CsrGraph graph = LoadGraph(args);
  const std::string coords = args.GetString("coords", "");
  if (coords.empty()) {
    std::fprintf(stderr, "draw requires --coords=<file.xy>\n");
    return 2;
  }
  const Layout layout = ReadCoordinatesFile(coords);
  if (layout.x.size() != static_cast<std::size_t>(graph.NumVertices())) {
    std::fprintf(stderr,
                 "coordinate count (%zu) does not match graph vertices (%d)\n",
                 layout.x.size(), graph.NumVertices());
    return 1;
  }
  const int size = static_cast<int>(args.GetInt("canvas", 800));
  const PixelLayout px = NormalizeToCanvas(layout, size, size);
  const std::string png = args.GetString("png", "");
  const std::string svg = args.GetString("svg", "");
  if (png.empty() && svg.empty()) {
    std::fprintf(stderr, "draw requires --png and/or --svg\n");
    return 2;
  }
  if (!png.empty()) {
    WritePngFile(
        DrawGraph(graph, px, nullptr, nullptr, false, args.Has("aa")), png);
    std::printf("wrote %s\n", png.c_str());
  }
  if (!svg.empty()) {
    WriteSvgFile(graph, px, svg);
    std::printf("wrote %s\n", svg.c_str());
  }

  obs::RunReport report;
  report.tool = "parhde_cli draw";
  report.graph = args.GetString("in", "");
  report.algo = "draw";
  report.vertices = graph.NumVertices();
  report.edges = graph.NumEdges();
  report.config = {{"canvas", std::to_string(size)},
                   {"aa", args.Has("aa") ? "true" : "false"}};
  report.total_seconds = timer.Seconds();
  MaybeWriteReport(args, std::move(report));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  parhde::ArgParser args(argc - 1, argv + 1);
  try {
    if (args.Has("threads")) {
      const auto threads = static_cast<int>(args.GetInt("threads", 0));
      if (threads < 1) {
        throw parhde::ParhdeError(parhde::ErrorCode::kInvalidValue, "cli",
                                  "--threads must be a positive integer");
      }
      omp_set_num_threads(threads);
    }
    // Hardware counters: enabled before dispatch so every subcommand's
    // ScopedRegionTimer regions get counter attribution. A bare
    // --hw-counters means --hw-counters=phase. On denied hosts the run
    // proceeds with a warning and the report records hw.available=false —
    // never a hard failure.
    if (args.Has("hw-counters")) {
      std::string mode_name = args.GetString("hw-counters", "off");
      if (mode_name.empty()) mode_name = "phase";
      parhde::obs::HwCounterMode mode;
      if (mode_name == "off") {
        mode = parhde::obs::HwCounterMode::kOff;
      } else if (mode_name == "phase") {
        mode = parhde::obs::HwCounterMode::kPhase;
      } else if (mode_name == "thread") {
        mode = parhde::obs::HwCounterMode::kThread;
      } else {
        throw parhde::ParhdeError(
            parhde::ErrorCode::kUsage, "cli",
            "--hw-counters must be off, phase, or thread (got '" + mode_name +
                "')");
      }
      if (!parhde::obs::EnableHwCounters(mode) &&
          mode != parhde::obs::HwCounterMode::kOff) {
        std::fprintf(stderr, "warning: hw counters unavailable: %s\n",
                     parhde::obs::HwCountersUnavailableReason().c_str());
      }
    }
    // Fault plan: --fault-plan wins; PARHDE_FAULT_PLAN is the env fallback.
    // Loading before dispatch means every subcommand honors it.
    std::string fault_plan = args.GetString("fault-plan", "");
    if (fault_plan.empty()) {
      if (const char* env = std::getenv("PARHDE_FAULT_PLAN")) fault_plan = env;
    }
    if (!fault_plan.empty()) {
      if (!parhde::resilience::kFaultInjectionCompiled) {
        throw parhde::ParhdeError(
            parhde::ErrorCode::kUsage, "cli",
            "fault plan given but this binary was built without "
            "-DPARHDE_FAULT_INJECTION=ON");
      }
      parhde::resilience::LoadFaultPlan(fault_plan);
    }
    if (command == "generate") return CmdGenerate(args);
    if (command == "stats") return CmdStats(args);
    if (command == "layout") return CmdLayout(args);
    if (command == "partition") return CmdPartition(args);
    if (command == "draw") return CmdDraw(args);
  } catch (const parhde::ParhdeError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return parhde::ExitCodeFor(e.code());
  } catch (const std::bad_alloc&) {
    // Allocation failure anywhere in a run maps to the documented
    // resource-exhaustion exit code, not a generic internal error.
    std::fprintf(stderr, "error: out of memory\n");
    return parhde::ExitCodeFor(parhde::ErrorCode::kResourceExhausted);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return Usage();
}
