// parhde_loadgen — load generator and smoke client for parhde_serve.
//
// Usage:
//   parhde_loadgen --socket=<path> --graph=<file> [--clients=8]
//                  [--requests=4] [--algo=parhde] [--s=10] [--axes=2]
//                  [--seed=1] [--deadline=<sec>] [--json=<file>]
//                  [--fail-on-error]
//
// Spawns --clients threads, each opening its own connection and issuing
// --requests layout requests back to back. Tallies ok / overloaded /
// failed responses and latency, prints a one-line summary, and with
// --json writes the summary as a run report (schema parhde-run-report/2,
// algo "service_loadgen") that bench_compare can consume directly.
//
// Exit codes: 0 all requests ok (or errors tolerated without
// --fail-on-error is still 0 only when every request succeeded — any
// non-ok response exits nonzero); with --fail-on-error sheds exit 14
// (the overloaded code) and other failures exit 1. Connection retries:
// the first connect per client retries for ~5s so the daemon can finish
// binding after fork/exec.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obs/report.hpp"
#include "service/protocol.hpp"
#include "util/cli.hpp"
#include "util/json_reader.hpp"
#include "util/json_writer.hpp"
#include "util/status.hpp"
#include "util/timer.hpp"

namespace {

using parhde::ErrorCode;
using parhde::ParhdeError;

int ConnectWithRetry(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    throw ParhdeError(ErrorCode::kUsage, "loadgen",
                      "socket path too long: " + socket_path);
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  for (int attempt = 0; attempt < 100; ++attempt) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      throw ParhdeError(ErrorCode::kIo, "loadgen",
                        std::string("socket() failed: ") +
                            std::strerror(errno));
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
        0) {
      return fd;
    }
    ::close(fd);
    // The daemon may still be binding (fork/exec race): retry briefly.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  throw ParhdeError(ErrorCode::kIo, "loadgen",
                    "cannot connect to " + socket_path + " after 5s");
}

struct Tally {
  std::atomic<std::int64_t> ok{0};
  std::atomic<std::int64_t> overloaded{0};
  std::atomic<std::int64_t> failed{0};
  // Latency sum in nanoseconds (atomic double isn't portable pre-C++20 on
  // all targets; integer ns is exact enough and lock-free everywhere).
  std::atomic<std::int64_t> latency_ns{0};
};

std::string BuildRequest(const parhde::ArgParser& args,
                         const std::string& graph, int client, int seq) {
  parhde::JsonWriter w;
  w.BeginObject();
  w.Key("op");
  w.String("layout");
  w.Key("id");
  w.String("c" + std::to_string(client) + "-r" + std::to_string(seq));
  w.Key("graph");
  w.String(graph);
  w.Key("algo");
  w.String(args.GetString("algo", "parhde"));
  w.Key("s");
  w.Int(args.GetInt("s", 10));
  w.Key("axes");
  w.Int(args.GetInt("axes", 2));
  w.Key("seed");
  // Distinct seeds exercise distinct pivot sets across requests.
  w.Int(args.GetInt("seed", 1) + client);
  const double deadline = args.GetDouble("deadline", 0.0);
  if (deadline > 0.0) {
    w.Key("deadline");
    w.Double(deadline);
  }
  w.EndObject();
  return w.Str();
}

void RunClient(const parhde::ArgParser& args, const std::string& socket_path,
               const std::string& graph, int client, int requests,
               Tally& tally) {
  try {
    const int fd = ConnectWithRetry(socket_path);
    std::string payload;
    for (int seq = 0; seq < requests; ++seq) {
      parhde::WallTimer latency;
      parhde::service::WriteFrame(fd, BuildRequest(args, graph, client, seq));
      if (!parhde::service::ReadFrame(fd, payload)) {
        // Daemon closed mid-burst: everything still unanswered failed.
        tally.failed.fetch_add(requests - seq);
        break;
      }
      tally.latency_ns.fetch_add(
          static_cast<std::int64_t>(latency.Seconds() * 1e9));
      const parhde::JsonValue response = parhde::ParseJson(payload);
      const std::string status = response.At("status").string;
      if (status == "ok") {
        tally.ok.fetch_add(1);
      } else if (status == "overloaded") {
        tally.overloaded.fetch_add(1);
      } else {
        tally.failed.fetch_add(1);
        std::fprintf(stderr, "loadgen: request failed (%s): %s\n",
                     status.c_str(),
                     response.Has("error")
                         ? response.At("error").At("message").string.c_str()
                         : "");
      }
    }
    ::close(fd);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "loadgen: client %d: %s\n", client, e.what());
    tally.failed.fetch_add(1);
  }
}

void WriteSummaryReport(const std::string& path,
                        const parhde::ArgParser& args,
                        const std::string& graph, int clients, int requests,
                        const Tally& tally, double wall_seconds) {
  const std::int64_t answered =
      tally.ok.load() + tally.overloaded.load() + tally.failed.load();
  parhde::obs::RunReport report;
  report.tool = "parhde_loadgen";
  report.graph = graph;
  report.algo = "service_loadgen";
  report.config = {
      {"clients", std::to_string(clients)},
      {"requests", std::to_string(requests)},
      {"algo", args.GetString("algo", "parhde")},
      {"s", std::to_string(args.GetInt("s", 10))},
  };
  report.total_seconds = wall_seconds;
  report.metrics = {
      {"ok", static_cast<double>(tally.ok.load())},
      {"overloaded", static_cast<double>(tally.overloaded.load())},
      {"failed", static_cast<double>(tally.failed.load())},
      {"mean_latency_seconds",
       answered > 0 ? static_cast<double>(tally.latency_ns.load()) * 1e-9 /
                          static_cast<double>(answered)
                    : 0.0},
      {"throughput_rps",
       wall_seconds > 0.0 ? static_cast<double>(tally.ok.load()) / wall_seconds
                          : 0.0},
  };
  parhde::obs::WriteReportFile(report, path);
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: parhde_loadgen --socket=<path> --graph=<file> [--clients=8]\n"
      "                      [--requests=4] [--algo=parhde] [--s=10]\n"
      "                      [--axes=2] [--seed=1] [--deadline=<sec>]\n"
      "                      [--json=<file>] [--fail-on-error]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  parhde::ArgParser args(argc, argv);
  try {
    const std::string socket_path = args.GetString("socket", "");
    const std::string graph = args.GetString("graph", "");
    if (socket_path.empty() || graph.empty()) return Usage();
    const int clients = static_cast<int>(args.GetInt("clients", 8));
    const int requests = static_cast<int>(args.GetInt("requests", 4));
    if (clients < 1 || requests < 1) {
      throw ParhdeError(ErrorCode::kInvalidValue, "loadgen",
                        "--clients and --requests must be positive");
    }

    Tally tally;
    parhde::WallTimer wall;
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        RunClient(args, socket_path, graph, c, requests, tally);
      });
    }
    for (std::thread& t : threads) t.join();
    const double wall_seconds = wall.Seconds();

    const std::int64_t total =
        static_cast<std::int64_t>(clients) * requests;
    std::printf(
        "loadgen: %lld requests, %lld ok, %lld overloaded, %lld failed, "
        "%.3fs wall\n",
        static_cast<long long>(total),
        static_cast<long long>(tally.ok.load()),
        static_cast<long long>(tally.overloaded.load()),
        static_cast<long long>(tally.failed.load()), wall_seconds);

    const std::string json = args.GetString("json", "");
    if (!json.empty()) {
      WriteSummaryReport(json, args, graph, clients, requests, tally,
                         wall_seconds);
    }

    if (tally.failed.load() > 0) return 1;
    if (tally.overloaded.load() > 0) {
      // Sheds are a service answer, not a transport failure — but a run
      // that expected full throughput (--fail-on-error) treats them as
      // the overloaded condition they are.
      return args.Has("fail-on-error")
                 ? parhde::ExitCodeFor(ErrorCode::kOverloaded)
                 : 0;
    }
    return 0;
  } catch (const ParhdeError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return parhde::ExitCodeFor(e.code());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
