// parhde_loadgen — load generator and smoke client for parhde_serve.
//
// Usage:
//   parhde_loadgen --socket=<path> --graph=<file> [--clients=8]
//                  [--requests=4] [--algo=parhde] [--s=10] [--axes=2]
//                  [--seed=1] [--deadline=<sec>]
//                  [--deadline-clients=<n>] [--json=<file>]
//                  [--fail-on-error]
//
// Spawns --clients threads, each opening its own connection and issuing
// --requests layout requests back to back. Every per-request latency is
// recorded, so the summary (and the --json report) carries the latency
// distribution — mean, p50, p95, p99, max — not just the mean. With
// --json the summary is written as a run report (schema
// parhde-run-report/2, algo "service_loadgen") that bench_compare can
// consume directly; the percentile metrics ride in `metrics`, so the
// bench_compare row key (algo|graph|config) is unchanged.
//
// --deadline-clients=N attaches --deadline to only the FIRST N clients,
// producing a mixed workload: deadline'd and deadline-free requests in
// flight simultaneously. Since the service runs each request under its
// own execution context, the two populations must not serialize or
// cross-cancel — CI's service-smoke runs this mix as a regression probe.
//
// Exit codes: 0 all requests ok (or errors tolerated without
// --fail-on-error is still 0 only when every request succeeded — any
// non-ok response exits nonzero); with --fail-on-error sheds exit 14
// (the overloaded code) and other failures exit 1. Connection retries:
// the first connect per client retries for ~5s so the daemon can finish
// binding after fork/exec.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "obs/report.hpp"
#include "service/protocol.hpp"
#include "util/cli.hpp"
#include "util/json_reader.hpp"
#include "util/json_writer.hpp"
#include "util/status.hpp"
#include "util/timer.hpp"

namespace {

using parhde::ErrorCode;
using parhde::ParhdeError;

int ConnectWithRetry(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    throw ParhdeError(ErrorCode::kUsage, "loadgen",
                      "socket path too long: " + socket_path);
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  for (int attempt = 0; attempt < 100; ++attempt) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      throw ParhdeError(ErrorCode::kIo, "loadgen",
                        std::string("socket() failed: ") +
                            std::strerror(errno));
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
        0) {
      return fd;
    }
    ::close(fd);
    // The daemon may still be binding (fork/exec race): retry briefly.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  throw ParhdeError(ErrorCode::kIo, "loadgen",
                    "cannot connect to " + socket_path + " after 5s");
}

struct Tally {
  std::atomic<std::int64_t> ok{0};
  std::atomic<std::int64_t> overloaded{0};
  std::atomic<std::int64_t> failed{0};
  // Per-answered-request latency samples (seconds). Mutex-guarded: a
  // push_back per response is noise next to a layout round-trip.
  std::mutex latency_mutex;
  std::vector<double> latency_seconds;

  void RecordLatency(double seconds) {
    std::lock_guard<std::mutex> lock(latency_mutex);
    latency_seconds.push_back(seconds);
  }
};

/// Nearest-rank percentile over an ascending-sorted sample vector.
double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

std::string BuildRequest(const parhde::ArgParser& args,
                         const std::string& graph, int client, int seq,
                         bool use_deadline) {
  parhde::JsonWriter w;
  w.BeginObject();
  w.Key("op");
  w.String("layout");
  w.Key("id");
  w.String("c" + std::to_string(client) + "-r" + std::to_string(seq));
  w.Key("graph");
  w.String(graph);
  w.Key("algo");
  w.String(args.GetString("algo", "parhde"));
  w.Key("s");
  w.Int(args.GetInt("s", 10));
  w.Key("axes");
  w.Int(args.GetInt("axes", 2));
  w.Key("seed");
  // Distinct seeds exercise distinct pivot sets across requests.
  w.Int(args.GetInt("seed", 1) + client);
  const double deadline = args.GetDouble("deadline", 0.0);
  if (use_deadline && deadline > 0.0) {
    w.Key("deadline");
    w.Double(deadline);
  }
  w.EndObject();
  return w.Str();
}

void RunClient(const parhde::ArgParser& args, const std::string& socket_path,
               const std::string& graph, int client, int requests,
               bool use_deadline, Tally& tally) {
  try {
    const int fd = ConnectWithRetry(socket_path);
    std::string payload;
    for (int seq = 0; seq < requests; ++seq) {
      parhde::WallTimer latency;
      parhde::service::WriteFrame(
          fd, BuildRequest(args, graph, client, seq, use_deadline));
      if (!parhde::service::ReadFrame(fd, payload)) {
        // Daemon closed mid-burst: everything still unanswered failed.
        tally.failed.fetch_add(requests - seq);
        break;
      }
      tally.RecordLatency(latency.Seconds());
      const parhde::JsonValue response = parhde::ParseJson(payload);
      const std::string status = response.At("status").string;
      if (status == "ok") {
        tally.ok.fetch_add(1);
      } else if (status == "overloaded") {
        tally.overloaded.fetch_add(1);
      } else {
        tally.failed.fetch_add(1);
        std::fprintf(stderr, "loadgen: request failed (%s): %s\n",
                     status.c_str(),
                     response.Has("error")
                         ? response.At("error").At("message").string.c_str()
                         : "");
      }
    }
    ::close(fd);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "loadgen: client %d: %s\n", client, e.what());
    tally.failed.fetch_add(1);
  }
}

void WriteSummaryReport(const std::string& path,
                        const parhde::ArgParser& args,
                        const std::string& graph, int clients, int requests,
                        int deadline_clients, Tally& tally,
                        double wall_seconds) {
  // Called after the client threads joined: the samples are quiescent.
  std::vector<double> sorted = tally.latency_seconds;
  std::sort(sorted.begin(), sorted.end());
  const double mean =
      sorted.empty()
          ? 0.0
          : std::accumulate(sorted.begin(), sorted.end(), 0.0) /
                static_cast<double>(sorted.size());
  parhde::obs::RunReport report;
  report.tool = "parhde_loadgen";
  report.graph = graph;
  report.algo = "service_loadgen";
  report.config = {
      {"clients", std::to_string(clients)},
      {"requests", std::to_string(requests)},
      {"algo", args.GetString("algo", "parhde")},
      {"s", std::to_string(args.GetInt("s", 10))},
  };
  if (deadline_clients > 0) {
    // Only present for mixed runs, so the default row's bench_compare key
    // (algo|graph|config) matches baselines seeded before the flag existed.
    report.config.emplace_back("deadline_clients",
                               std::to_string(deadline_clients));
  }
  report.total_seconds = wall_seconds;
  report.metrics = {
      {"ok", static_cast<double>(tally.ok.load())},
      {"overloaded", static_cast<double>(tally.overloaded.load())},
      {"failed", static_cast<double>(tally.failed.load())},
      {"mean_latency_seconds", mean},
      {"p50_latency_seconds", Percentile(sorted, 0.50)},
      {"p95_latency_seconds", Percentile(sorted, 0.95)},
      {"p99_latency_seconds", Percentile(sorted, 0.99)},
      {"max_latency_seconds", sorted.empty() ? 0.0 : sorted.back()},
      {"throughput_rps",
       wall_seconds > 0.0 ? static_cast<double>(tally.ok.load()) / wall_seconds
                          : 0.0},
  };
  parhde::obs::WriteReportFile(report, path);
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: parhde_loadgen --socket=<path> --graph=<file> [--clients=8]\n"
      "                      [--requests=4] [--algo=parhde] [--s=10]\n"
      "                      [--axes=2] [--seed=1] [--deadline=<sec>]\n"
      "                      [--deadline-clients=<n>] [--json=<file>]\n"
      "                      [--fail-on-error]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  parhde::ArgParser args(argc, argv);
  try {
    const std::string socket_path = args.GetString("socket", "");
    const std::string graph = args.GetString("graph", "");
    if (socket_path.empty() || graph.empty()) return Usage();
    const int clients = static_cast<int>(args.GetInt("clients", 8));
    const int requests = static_cast<int>(args.GetInt("requests", 4));
    if (clients < 1 || requests < 1) {
      throw ParhdeError(ErrorCode::kInvalidValue, "loadgen",
                        "--clients and --requests must be positive");
    }
    // --deadline alone applies to every client (the original behavior);
    // --deadline-clients=N restricts it to clients [0, N) for mixed runs.
    const int deadline_clients = static_cast<int>(
        args.GetInt("deadline-clients", args.GetDouble("deadline", 0.0) > 0.0
                                            ? clients
                                            : 0));
    if (deadline_clients < 0 || deadline_clients > clients) {
      throw ParhdeError(ErrorCode::kInvalidValue, "loadgen",
                        "--deadline-clients must be in [0, --clients]");
    }

    Tally tally;
    parhde::WallTimer wall;
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        RunClient(args, socket_path, graph, c, requests,
                  /*use_deadline=*/c < deadline_clients, tally);
      });
    }
    for (std::thread& t : threads) t.join();
    const double wall_seconds = wall.Seconds();

    const std::int64_t total =
        static_cast<std::int64_t>(clients) * requests;
    std::vector<double> sorted = tally.latency_seconds;
    std::sort(sorted.begin(), sorted.end());
    std::printf(
        "loadgen: %lld requests, %lld ok, %lld overloaded, %lld failed, "
        "%.3fs wall, p50=%.3fs p95=%.3fs p99=%.3fs max=%.3fs\n",
        static_cast<long long>(total),
        static_cast<long long>(tally.ok.load()),
        static_cast<long long>(tally.overloaded.load()),
        static_cast<long long>(tally.failed.load()), wall_seconds,
        Percentile(sorted, 0.50), Percentile(sorted, 0.95),
        Percentile(sorted, 0.99), sorted.empty() ? 0.0 : sorted.back());

    const std::string json = args.GetString("json", "");
    if (!json.empty()) {
      WriteSummaryReport(json, args, graph, clients, requests,
                         deadline_clients, tally, wall_seconds);
    }

    if (tally.failed.load() > 0) return 1;
    if (tally.overloaded.load() > 0) {
      // Sheds are a service answer, not a transport failure — but a run
      // that expected full throughput (--fail-on-error) treats them as
      // the overloaded condition they are.
      return args.Has("fail-on-error")
                 ? parhde::ExitCodeFor(ErrorCode::kOverloaded)
                 : 0;
    }
    return 0;
  } catch (const ParhdeError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return parhde::ExitCodeFor(e.code());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
