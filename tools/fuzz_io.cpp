// libFuzzer harness for the three graph readers (MatrixMarket, edge list,
// binary CSR snapshot). Built only with -DPARHDE_FUZZ=ON, which requires a
// clang toolchain (-fsanitize=fuzzer,address).
//
// Input format: byte 0 selects the reader (mod 3), the rest is the file
// body. The property under test is the IO contract from util/status.hpp:
// arbitrary bytes must either parse into a graph that passes Validate() or
// throw a typed ParhdeError — never crash, hang, or trip ASan. The checked
// in seed corpus lives in tests/corpus/fuzz_io/.
//
// Run: ./fuzz_io ../tests/corpus/fuzz_io -max_total_time=60
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "graph/builder.hpp"
#include "graph/io.hpp"
#include "util/status.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size < 1) return 0;
  const int selector = data[0] % 3;
  std::istringstream in(std::string(
      reinterpret_cast<const char*>(data) + 1, size - 1));
  try {
    switch (selector) {
      case 0: {
        const parhde::MatrixMarketData mm = parhde::ReadMatrixMarket(in);
        parhde::BuildCsrGraph(mm.n, mm.edges).Validate();
        break;
      }
      case 1: {
        const parhde::MatrixMarketData el = parhde::ReadEdgeList(in);
        parhde::BuildCsrGraph(el.n, el.edges).Validate();
        break;
      }
      default:
        parhde::ReadBinary(in).Validate();
        break;
    }
  } catch (const parhde::ParhdeError&) {
    // Typed rejection is the correct behavior for malformed input.
  }
  return 0;
}
