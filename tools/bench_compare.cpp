// bench_compare — turns the BENCH_*.json artifacts the benches already
// emit into an actual performance trajectory: loads two or more run-report
// files (or directories of them, e.g. bench/baselines/ vs a fresh
// bench-smoke output dir), matches rows by (bench, graph, config), applies
// a noise threshold, and renders a verdict.
//
//   bench_compare [flags] <baseline file|dir> <candidate file|dir>...
//     --threshold=0.10    relative slowdown tolerated before "regressed"
//                         (and speedup required before "improved")
//     --json=<file>       write the machine-readable verdict document
//                         (schema "parhde-bench-compare/1")
//     --format=table|json stdout rendering (default: table)
//
// Verdicts per row: improved / unchanged / regressed, plus `missing`
// (baseline row absent from the candidate set) and `added` (candidate row
// with no baseline) — the latter two are inventory changes, not
// regressions, and never affect the exit code.
//
// Exit codes: 0 no regression, 13 at least one row regressed beyond the
// threshold, 2 usage, 3 I/O, 4 malformed JSON. CI runs this as a
// soft-fail step over checked-in baselines (see bench/baselines/README.md
// for the update procedure): machine-to-machine noise makes a hard gate
// on absolute times meaningless, but the diff surfacing in the log makes
// a silent slowdown loud.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "util/cli.hpp"
#include "util/json_reader.hpp"
#include "util/json_writer.hpp"
#include "util/status.hpp"
#include "util/table.hpp"

namespace {

using namespace parhde;

/// The documented "a row got slower" exit code; distinct from every
/// ErrorCode exit so CI can branch on it.
constexpr int kRegressionExit = 13;

struct BenchRow {
  std::string bench;   // report.algo (the bench slug)
  std::string graph;   // report.graph.name
  std::string config;  // canonicalized "k=v,..." of the config object
  double total_seconds = 0.0;
  std::string file;    // provenance, for messages
};

std::string RowKey(const BenchRow& row) {
  return row.bench + "|" + row.graph + "|" + row.config;
}

int Usage() {
  std::fprintf(stderr,
               "usage: bench_compare [--threshold=0.10] [--json=<file>] "
               "[--format=table|json]\n"
               "                     <baseline file|dir> "
               "<candidate file|dir>...\n");
  return ExitCodeFor(ErrorCode::kUsage);
}

/// Loads one run-report file into `rows`. Documents with a different (or
/// no) schema — a trace file or compile_commands.json sharing the
/// directory — are skipped with a warning; malformed JSON and run-report
/// documents missing required keys still raise typed errors.
void LoadReportFile(const std::string& path, std::vector<BenchRow>& rows) {
  const JsonValue doc = ParseJsonFile(path);
  if (doc.kind != JsonValue::Kind::kObject || !doc.Has("schema") ||
      doc.At("schema").string.rfind("parhde-run-report/", 0) != 0) {
    std::fprintf(stderr, "bench_compare: skipping %s (not a run report)\n",
                 path.c_str());
    return;
  }
  BenchRow row;
  row.file = path;
  row.bench = doc.At("algo").string;
  row.graph = doc.At("graph").At("name").string;
  if (doc.Has("config")) {
    // std::map keys are sorted, so the canonical form is order-stable no
    // matter how the producer ordered the object.
    for (const auto& [key, value] : doc.At("config").object) {
      row.config += key + "=" + value.string + ",";
    }
  }
  row.total_seconds = doc.At("total_seconds").number;
  rows.push_back(std::move(row));
}

/// A positional argument: one report file, or a directory scanned for
/// *.json entries (non-recursive — baselines are a flat directory).
std::vector<BenchRow> LoadPath(const std::string& path) {
  std::vector<BenchRow> rows;
  namespace fs = std::filesystem;
  std::error_code ec;
  if (fs::is_directory(path, ec)) {
    std::vector<std::string> files;
    for (const auto& entry : fs::directory_iterator(path, ec)) {
      if (!entry.is_regular_file()) continue;
      if (entry.path().extension() != ".json") continue;
      files.push_back(entry.path().string());
    }
    std::sort(files.begin(), files.end());  // deterministic row order
    for (const auto& file : files) LoadReportFile(file, rows);
    return rows;
  }
  if (!fs::exists(path, ec)) {
    throw ParhdeError(ErrorCode::kIo, "bench_compare",
                      "no such file or directory: " + path);
  }
  LoadReportFile(path, rows);
  return rows;
}

struct Comparison {
  std::string bench, graph;
  double baseline_seconds = 0.0;
  double candidate_seconds = 0.0;
  double ratio = 0.0;          // candidate / baseline
  std::string verdict;         // improved|unchanged|regressed|missing|added
};

std::string VerdictJson(const std::vector<Comparison>& rows, double threshold,
                        const std::map<std::string, int>& summary,
                        const std::string& overall) {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema");
  w.String("parhde-bench-compare/1");
  w.Key("metric");
  w.String("total_seconds");
  w.Key("threshold");
  w.Double(threshold);
  w.Key("rows");
  w.BeginArray();
  for (const auto& row : rows) {
    w.BeginObject();
    w.Key("bench");
    w.String(row.bench);
    w.Key("graph");
    w.String(row.graph);
    w.Key("baseline_seconds");
    w.Double(row.baseline_seconds);
    w.Key("candidate_seconds");
    w.Double(row.candidate_seconds);
    w.Key("ratio");
    w.Double(row.ratio);
    w.Key("verdict");
    w.String(row.verdict);
    w.EndObject();
  }
  w.EndArray();
  w.Key("summary");
  w.BeginObject();
  for (const auto& [verdict, count] : summary) {
    w.Key(verdict);
    w.Int(count);
  }
  w.EndObject();
  w.Key("verdict");
  w.String(overall);
  w.EndObject();
  return w.Str();
}

int Run(const ArgParser& args) {
  const auto& inputs = args.Positional();
  if (inputs.size() < 2) return Usage();
  const double threshold = args.GetDouble("threshold", 0.10);
  if (threshold < 0.0) {
    throw ParhdeError(ErrorCode::kUsage, "bench_compare",
                      "--threshold must be non-negative");
  }
  const std::string format =
      args.GetChoice("format", {"table", "json"}, "table");

  std::map<std::string, BenchRow> baseline;
  for (const BenchRow& row : LoadPath(inputs[0])) {
    baseline[RowKey(row)] = row;
  }
  std::map<std::string, BenchRow> candidate;
  for (std::size_t i = 1; i < inputs.size(); ++i) {
    for (const BenchRow& row : LoadPath(inputs[i])) {
      // Later candidate sets override earlier ones, so "dir newest-run/"
      // after "dir older-run/" compares the freshest measurement.
      candidate[RowKey(row)] = row;
    }
  }
  if (baseline.empty()) {
    throw ParhdeError(ErrorCode::kUsage, "bench_compare",
                      "baseline set is empty: " + inputs[0]);
  }

  std::vector<Comparison> rows;
  std::map<std::string, int> summary{{"improved", 0},
                                     {"unchanged", 0},
                                     {"regressed", 0},
                                     {"missing", 0},
                                     {"added", 0}};
  for (const auto& [key, base] : baseline) {
    Comparison cmp;
    cmp.bench = base.bench;
    cmp.graph = base.graph;
    cmp.baseline_seconds = base.total_seconds;
    const auto it = candidate.find(key);
    if (it == candidate.end()) {
      cmp.verdict = "missing";
    } else {
      cmp.candidate_seconds = it->second.total_seconds;
      cmp.ratio = base.total_seconds > 0.0
                      ? cmp.candidate_seconds / base.total_seconds
                      : 0.0;
      if (cmp.candidate_seconds > base.total_seconds * (1.0 + threshold)) {
        cmp.verdict = "regressed";
      } else if (cmp.candidate_seconds <
                 base.total_seconds * (1.0 - threshold)) {
        cmp.verdict = "improved";
      } else {
        cmp.verdict = "unchanged";
      }
    }
    ++summary[cmp.verdict];
    rows.push_back(std::move(cmp));
  }
  for (const auto& [key, cand] : candidate) {
    if (baseline.count(key) > 0) continue;
    Comparison cmp;
    cmp.bench = cand.bench;
    cmp.graph = cand.graph;
    cmp.candidate_seconds = cand.total_seconds;
    cmp.verdict = "added";
    ++summary["added"];
    rows.push_back(std::move(cmp));
  }

  const bool regressed = summary["regressed"] > 0;
  const std::string overall = regressed            ? "regressed"
                              : summary["improved"] > 0 ? "improved"
                                                        : "unchanged";
  const std::string json =
      VerdictJson(rows, threshold, summary, overall);

  if (format == "json") {
    std::printf("%s\n", json.c_str());
  } else {
    TextTable table({"Bench", "Graph", "Base(s)", "New(s)", "Ratio",
                     "Verdict"});
    for (const auto& row : rows) {
      table.AddRow({row.bench, row.graph,
                    row.baseline_seconds > 0.0
                        ? TextTable::Num(row.baseline_seconds, 3)
                        : "-",
                    row.candidate_seconds > 0.0
                        ? TextTable::Num(row.candidate_seconds, 3)
                        : "-",
                    row.ratio > 0.0 ? TextTable::Num(row.ratio, 2) : "-",
                    row.verdict});
    }
    std::printf("%s", table.Render().c_str());
    std::printf(
        "verdict: %s (improved %d, unchanged %d, regressed %d, missing %d, "
        "added %d; threshold %.0f%%)\n",
        overall.c_str(), summary["improved"], summary["unchanged"],
        summary["regressed"], summary["missing"], summary["added"],
        threshold * 100.0);
  }
  const std::string json_path = args.GetString("json", "");
  if (!json_path.empty()) {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      throw ParhdeError(ErrorCode::kIo, "bench_compare",
                        "cannot open verdict output file: " + json_path);
    }
    std::fprintf(out, "%s\n", json.c_str());
    std::fclose(out);
  }
  return regressed ? kRegressionExit : 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return Run(ArgParser(argc, argv));
  } catch (const ParhdeError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return ExitCodeFor(e.code());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
