#!/usr/bin/env sh
# Builds the ASan+UBSan configuration and runs the robustness-focused test
# subset under it: the corrupted-input corpus, the disconnected-graph
# end-to-end cases, and the CLI exit-code checks. A typed error that merely
# papers over a heap overflow or UB will fail here even though the plain
# test suite passes.
#
# Usage: tools/check_sanitizers.sh [build-dir]   (default: build-asan)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-asan"}

cmake -B "$build_dir" -S "$repo_root" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DPARHDE_SANITIZE=address-undefined
cmake --build "$build_dir" -j"$(nproc 2>/dev/null || echo 4)" \
  --target parhde_tests parhde_cli

# halt_on_error keeps a UBSan report from scrolling past unnoticed;
# detect_leaks stays on (the corpus must not leak on the throw paths).
ASAN_OPTIONS=halt_on_error=1 UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
  "$build_dir/tests/parhde_tests" \
  --gtest_filter='CorruptInputTest.*:ComponentsLayout.*:TinyGraphs.*:CliToolTest.DistinctExitCodesForDistinctFailures:CliToolTest.DisconnectedPoliciesEndToEnd:FileIoTest.*'

echo "sanitizer sweep passed"
